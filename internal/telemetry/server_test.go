package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestStatus() Status {
	return Status{
		VirtualNs:       123_000,
		EventsProcessed: 456,
		DeliveredPkts:   7,
		Shards: []ShardStatus{
			{Shard: 0, AtNs: 120_000, WindowStartNs: 100_000, WindowEndNs: 150_000, Processed: 200, Pending: 3},
			{Shard: 1, AtNs: 130_000, WindowStartNs: 100_000, WindowEndNs: 150_000, Processed: 256, Pending: 0},
		},
		RingDepths: []int{0, 1, 2, 0},
	}
}

// TestBoardPublish covers Seq stamping and snapshot isolation.
func TestBoardPublish(t *testing.T) {
	b := NewBoard()
	if _, ok := b.Latest(); ok {
		t.Fatal("empty board reported a status")
	}
	st := newTestStatus()
	b.PublishStatus(st)
	got, ok := b.Latest()
	if !ok || got.Seq != 1 {
		t.Fatalf("first publish: ok=%v seq=%d, want ok seq=1", ok, got.Seq)
	}
	b.PublishStatus(st)
	got, _ = b.Latest()
	if got.Seq != 2 {
		t.Fatalf("second publish seq=%d, want 2", got.Seq)
	}
	// Mutating the returned copy must not leak into the board.
	got.Shards[0].Shard = 99
	again, _ := b.Latest()
	if again.Shards[0].Shard != 0 {
		t.Fatal("Latest returned a shared slice")
	}
	// Nil board is inert.
	var nb *Board
	nb.PublishStatus(st)
	nb.PublishMetrics(nil, nil)
	if _, ok := nb.Latest(); ok {
		t.Fatal("nil board reported a status")
	}
}

// TestStatusEndpoints covers /status and /metrics over HTTP: 503 before
// any publish, correct payloads after.
func TestStatusEndpoints(t *testing.T) {
	board := NewBoard()
	srv := httptest.NewServer(NewStatusServer(board, nil).Handler())
	defer srv.Close()

	for _, path := range []string{"/status", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before publish: code %d, want 503", path, resp.StatusCode)
		}
	}

	board.PublishStatus(newTestStatus())
	board.PublishMetrics(map[string]int64{"engine.events_processed": 456},
		map[string]HistSnapshot{"latency.e2e_ns": {Bounds: []float64{1000}, Counts: []int64{5}, Count: 7, Sum: 9000}})

	resp, err := http.Get(srv.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/status Content-Type = %q", ct)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Seq != 1 || st.VirtualNs != 123_000 || len(st.Shards) != 2 || st.Shards[1].Processed != 256 {
		t.Errorf("/status decoded %+v", st)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); ct != ExpoContentType {
		t.Errorf("/metrics Content-Type = %q, want %q", ct, ExpoContentType)
	}
	body, _ := io.ReadAll(mresp.Body)
	n, err := ValidateExposition(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics failed validation: %v\n%s", err, body)
	}
	if n == 0 {
		t.Fatal("/metrics had no samples")
	}
	if !strings.Contains(string(body), "prdrb_engine_events_processed 456") {
		t.Errorf("/metrics missing scalar:\n%s", body)
	}
	if !strings.Contains(string(body), `prdrb_latency_e2e_ns_bucket{le="+Inf"} 7`) {
		t.Errorf("/metrics missing +Inf bucket:\n%s", body)
	}
}

// TestSSEFraming checks the /events stream emits correctly framed
// server-sent events and only on Seq changes.
func TestSSEFraming(t *testing.T) {
	board := NewBoard()
	board.PublishStatus(newTestStatus())
	srv := httptest.NewServer(NewStatusServer(board, nil).Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/events?poll_ms=5", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	readFrame := func() (event string, payload Status) {
		t.Helper()
		sc := bufio.NewScanner(resp.Body)
		var dataLine string
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				dataLine = strings.TrimPrefix(line, "data: ")
			case line == "" && dataLine != "":
				if err := json.Unmarshal([]byte(dataLine), &payload); err != nil {
					t.Fatalf("bad SSE payload %q: %v", dataLine, err)
				}
				return event, payload
			}
		}
		t.Fatalf("stream ended without a complete frame: %v", sc.Err())
		return "", Status{}
	}

	event, st := readFrame()
	if event != "status" {
		t.Errorf("frame event = %q, want status", event)
	}
	if st.Seq != 1 || st.VirtualNs != 123_000 {
		t.Errorf("frame payload %+v", st)
	}

	// A second publish must produce exactly one more frame with the new Seq.
	next := newTestStatus()
	next.VirtualNs = 999_000
	board.PublishStatus(next)
	event, st = readFrame()
	if event != "status" || st.Seq != 2 || st.VirtualNs != 999_000 {
		t.Errorf("second frame: event=%q payload=%+v", event, st)
	}
}

// TestWriteSSE pins the frame bytes.
func TestWriteSSE(t *testing.T) {
	rec := httptest.NewRecorder()
	if err := writeSSE(rec, "status", map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	want := "event: status\ndata: {\"x\":1}\n\n"
	if got := rec.Body.String(); got != want {
		t.Errorf("frame = %q, want %q", got, want)
	}
}

// TestLiveStatsNil checks the nil-safety contract of the progress feed.
func TestLiveStatsNil(t *testing.T) {
	var ls *LiveStats
	ls.AddEvents(5)
	ls.SetVirtual(10)
	ls.AddRun()
	real := &LiveStats{}
	real.AddEvents(5)
	real.AddEvents(3)
	real.SetVirtual(42)
	real.AddRun()
	if real.Events.Load() != 8 || real.VirtualNs.Load() != 42 || real.Runs.Load() != 1 {
		t.Errorf("LiveStats = %d/%d/%d", real.Events.Load(), real.VirtualNs.Load(), real.Runs.Load())
	}
}
