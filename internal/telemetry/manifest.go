package telemetry

import (
	"encoding/json"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// ManifestSchemaID identifies the manifest format; bump on breaking
// changes together with schema/run-manifest.schema.json.
const ManifestSchemaID = "prdrb/run-manifest/v1"

// Manifest is the reproducibility record written next to a run's outputs:
// what was run (config, seed), by what code (git describe, Go version),
// when and for how long (wall clock), and what it counted (the metrics
// registry snapshot). Together with the deterministic engine, the manifest
// makes every experiment re-runnable from its artifact alone.
type Manifest struct {
	Schema      string           `json:"schema"`
	Name        string           `json:"name"`
	CreatedAt   string           `json:"created_at"` // RFC 3339, wall clock
	GitDescribe string           `json:"git_describe"`
	GoVersion   string           `json:"go_version"`
	Seed        uint64           `json:"seed"`
	Config      map[string]any   `json:"config"`
	WallTimeSec float64          `json:"wall_time_sec"`
	Metrics     map[string]int64 `json:"metrics"`
	Trace       *TraceInfo       `json:"trace,omitempty"`
}

// TraceInfo records the trace artifacts a run emitted.
type TraceInfo struct {
	File   string `json:"file"`   // JSONL event log
	Chrome string `json:"chrome"` // Chrome trace-event file (Perfetto)
	Events int    `json:"events"`
	Sample int    `json:"sample"` // 1-in-N packet sampling divisor
}

// NewManifest starts a manifest stamped with the current environment.
// config must be JSON-serializable; the caller fills Seed, Metrics,
// WallTimeSec and Trace before writing.
func NewManifest(name string, config map[string]any) *Manifest {
	if config == nil {
		config = map[string]any{}
	}
	return &Manifest{
		Schema:      ManifestSchemaID,
		Name:        name,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		Config:      config,
		Metrics:     map[string]int64{},
	}
}

// GitDescribe returns `git describe --always --dirty` of the working
// tree, or "unknown" when git or the repository is unavailable (manifests
// must never fail a run).
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return "unknown"
	}
	s := strings.TrimSpace(string(out))
	if s == "" {
		return "unknown"
	}
	return s
}

// MarshalIndent renders the manifest as stable, human-diffable JSON.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.MarshalIndent()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
