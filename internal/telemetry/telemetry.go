// Package telemetry is the simulator's observability layer: event-level
// tracing of packet lifecycles and PR-DRB control decisions, a named
// counter/gauge registry snapshotted into machine-readable run manifests,
// and the schemas both artifacts validate against.
//
// The layer is wiring-time resolved: a simulation built without telemetry
// carries nil handles and pays nothing — no branches that allocate, no
// indirect calls — which the hot-path zero-alloc guard pins. With telemetry
// attached, every emission is a bounds-checked append onto an in-memory
// event log that the host process serializes after the run, as JSONL (one
// event per line, schema-validated) and as Chrome trace-event JSON so a run
// opens directly in Perfetto (ui.perfetto.dev).
//
// Determinism: events carry only virtual time and simulation state, never
// wall-clock time, so a fixed-seed run emits a byte-identical trace on
// every execution. Wall-clock, host and VCS provenance live in the run
// manifest, which is schema-validated rather than byte-compared.
package telemetry

// Options configures a telemetry bundle.
type Options struct {
	// Trace enables event tracing. Off, the bundle still carries a metrics
	// registry (for manifests without traces).
	Trace bool
	// Sample keeps 1-in-N packets in the trace (<=1 keeps every packet).
	// Control events (saturation, metapath, SolDB, fault, recovery) are
	// never sampled out — they are rare and each one matters.
	Sample int
}

// Telemetry bundles the tracer and the metrics registry a simulation is
// wired with. A nil *Telemetry (or a nil Tracer inside one) disables the
// corresponding half for free.
type Telemetry struct {
	// Tracer records packet and control events; nil when tracing is off.
	Tracer *Tracer
	// Registry holds the named counters and gauges snapshotted into the
	// run manifest. Always non-nil.
	Registry *Registry
}

// New builds a telemetry bundle from opts.
func New(opts Options) *Telemetry {
	t := &Telemetry{Registry: NewRegistry()}
	if opts.Trace {
		t.Tracer = NewTracer(opts.Sample)
	}
	return t
}
