package telemetry

// Sharded tracing. The Tracer is deliberately not safe for concurrent
// use, and the parallel engine does not make it so: each shard records
// into its own forked tracer (single-writer, no synchronization on the
// hot path), and the runner absorbs the shard buffers into the parent at
// the end of the run with a deterministic k-way merge. Per-shard buffers
// are time-ordered (simulation time is monotonic within a shard, and
// barrier-task emissions happen at window starts, which never precede
// prior shard events), so the merge yields a globally time-sorted trace;
// ties break by shard index then emission order — independent of
// GOMAXPROCS and stable across runs.

// Fork returns a shard-local tracer inheriting the parent's sampling
// divisor and current run scope, with an empty buffer. Nil-safe: forking
// a nil tracer yields nil, keeping disabled telemetry free in sharded
// mode too.
func (t *Tracer) Fork() *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{sample: t.sample, run: t.run}
}

// Absorb merges the shard tracers' buffers into t ordered by event time
// (ties: slice position, then emission order) and clears them. Calling it
// after every execution slice is safe: simulation time only moves
// forward, so successive absorptions append in global time order.
func (t *Tracer) Absorb(shards []*Tracer) {
	if t == nil {
		return
	}
	idx := make([]int, len(shards))
	for {
		best := -1
		var bestAt int64
		for s, tr := range shards {
			if tr == nil || idx[s] >= len(tr.events) {
				continue
			}
			if at := tr.events[idx[s]].At; best < 0 || at < bestAt {
				best, bestAt = s, at
			}
		}
		if best < 0 {
			break
		}
		t.events = append(t.events, shards[best].events[idx[best]])
		idx[best]++
	}
	for _, tr := range shards {
		if tr != nil {
			tr.events = tr.events[:0]
		}
	}
}
