package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// StatusServer serves the live observability endpoints off a Board:
//
//	/metrics     Prometheus text exposition of the last registry snapshot
//	/status      JSON Status snapshot (latest published)
//	/fleet       JSON FleetStatus snapshot (campaign runs only)
//	/congestion  JSON CongestionStatus snapshot (congestion sampling only)
//	/events      SSE stream of Status snapshots as they are published
//	/debug/      net/http/pprof (DefaultServeMux, registered by profile.go)
//
// Handlers only read the Board and LiveStats — never live simulation
// state — so serving is race-free by construction.
type StatusServer struct {
	Board *Board
	// Live feeds the events/sec estimate; optional.
	Live *LiveStats

	// rate estimator state (wall-clock side only).
	mu         sync.Mutex
	lastWall   time.Time
	lastEvents int64
	lastRate   float64
}

// NewStatusServer wires a server over board and live (either may be nil,
// though a nil board serves only 404s and pprof).
func NewStatusServer(board *Board, live *LiveStats) *StatusServer {
	return &StatusServer{Board: board, Live: live}
}

// eventsPerSec estimates the wall-clock event rate from LiveStats deltas,
// holding each estimate for at least 250ms so rapid scrapes don't divide
// by near-zero intervals.
func (s *StatusServer) eventsPerSec() float64 {
	if s.Live == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	ev := s.Live.Events.Load()
	if s.lastWall.IsZero() {
		s.lastWall, s.lastEvents = now, ev
		return 0
	}
	dt := now.Sub(s.lastWall)
	if dt < 250*time.Millisecond {
		return s.lastRate
	}
	s.lastRate = float64(ev-s.lastEvents) / dt.Seconds()
	s.lastWall, s.lastEvents = now, ev
	return s.lastRate
}

// Handler returns the endpoint mux.
func (s *StatusServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/fleet", s.handleFleet)
	mux.HandleFunc("/congestion", s.handleCongestion)
	mux.HandleFunc("/events", s.handleEvents)
	// pprof registers on the DefaultServeMux at package init.
	mux.Handle("/debug/", http.DefaultServeMux)
	return mux
}

func (s *StatusServer) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	scalars, hists := s.Board.Metrics()
	if scalars == nil && hists == nil {
		http.Error(w, "no metrics published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", ExpoContentType)
	_ = WriteExposition(w, scalars, hists)
}

// currentStatus assembles the latest snapshot with the wall-rate filled
// in.
func (s *StatusServer) currentStatus() (Status, bool) {
	st, ok := s.Board.Latest()
	if !ok {
		return Status{}, false
	}
	st.EventsPerSec = s.eventsPerSec()
	return st, true
}

func (s *StatusServer) handleStatus(w http.ResponseWriter, _ *http.Request) {
	st, ok := s.currentStatus()
	if !ok {
		http.Error(w, "no status published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(st)
}

// handleFleet serves the campaign fleet view: how many cell simulations
// are running/done/failed and where each one stands, with the aggregate
// wall-clock event rate filled in at serve time.
func (s *StatusServer) handleFleet(w http.ResponseWriter, _ *http.Request) {
	f, ok := s.Board.Fleet()
	if !ok {
		http.Error(w, "no fleet view published yet (not a campaign run?)", http.StatusServiceUnavailable)
		return
	}
	f.EventsPerSec = s.eventsPerSec()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(f)
}

// handleEvents streams snapshots as server-sent events: each newly
// published status (detected by Seq) becomes one `event: status` frame.
// The poll cadence is wall-clock (default 250ms, ?poll_ms= overrides) —
// the virtual-time cadence is the sampler's business, this only controls
// how promptly a publish reaches the wire. The stream ends when the
// client disconnects.
func (s *StatusServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	poll := 250 * time.Millisecond
	if v := r.URL.Query().Get("poll_ms"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			poll = time.Duration(ms) * time.Millisecond
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	var lastSeq uint64
	for {
		if st, ok := s.currentStatus(); ok && st.Seq != lastSeq {
			lastSeq = st.Seq
			if err := writeSSE(w, "status", st); err != nil {
				return
			}
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// writeSSE emits one server-sent event frame: `event: <name>` and a
// single `data:` line holding the compact JSON payload, followed by the
// blank separator line.
func writeSSE(w http.ResponseWriter, event string, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}

// ServeStatus binds addr, serves the status endpoints in a background
// goroutine, and returns the bound address (useful with ":0"). Like
// ServePprof, serve errors after a successful bind are swallowed —
// observability must never abort a run.
func ServeStatus(addr string, board *Board, live *LiveStats) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := NewStatusServer(board, live)
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	return ln.Addr().String(), nil
}
