package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"prdrb/internal/sim"
)

func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	tr.BeginRun("x")
	tr.PacketInjected(0, 1, 0, 1, 64)
	tr.PacketHop(0, 1, 0, 0, 0)
	tr.PacketDelivered(0, 1, 0, 1, 0, 0)
	tr.PacketDropped(0, 1, 0, 1, 0)
	tr.Unreachable(0, 0, 1)
	tr.Control(0, KindSaturation, 0, 1, 0, 0)
	tr.RouterEvent(0, KindLinkDown, 0, 0, 0)
	if tr.Sampled(0) {
		t.Fatal("nil tracer must never sample")
	}
	if tr.Len() != 0 || tr.Events() != nil || tr.RunLabels() != nil {
		t.Fatal("nil tracer must report empty state")
	}
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer(4)
	kept := 0
	for pkt := uint64(0); pkt < 100; pkt++ {
		if tr.Sampled(pkt) {
			kept++
		}
	}
	if kept != 25 {
		t.Fatalf("1-in-4 sampling kept %d of 100", kept)
	}
	if all := NewTracer(0); all.Sample() != 1 {
		t.Fatalf("sample<=1 should clamp to 1, got %d", all.Sample())
	}
}

func TestTracerRunScoping(t *testing.T) {
	tr := NewTracer(1)
	tr.BeginRun("first")
	tr.PacketInjected(10, 1, 0, 3, 64)
	tr.BeginRun("second")
	tr.PacketInjected(10, 1, 0, 3, 64)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("want 2 events, got %d", len(evs))
	}
	if evs[0].Run != 0 || evs[1].Run != 1 {
		t.Fatalf("run scoping wrong: %d, %d", evs[0].Run, evs[1].Run)
	}
	if got := tr.RunLabels(); len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("labels wrong: %v", got)
	}
}

// buildSampleTrace emits one event of every kind so serialization and
// schema tests cover the full enum.
func buildSampleTrace() *Tracer {
	tr := NewTracer(1)
	tr.BeginRun("sample")
	tr.PacketInjected(100, 7, 0, 15, 2048)
	tr.PacketHop(250, 7, 3, 1, 50)
	tr.PacketDelivered(900, 7, 0, 15, 800, 9)
	tr.PacketInjected(120, 8, 2, 9, 64)
	tr.PacketDropped(400, 8, 2, 9, 5)
	tr.Unreachable(500, 4, 11)
	tr.Control(600, KindSaturation, 0, 15, 700, 0)
	tr.Control(610, KindMetapathOpen, 0, 15, 0, 2)
	tr.Control(620, KindMetapathClose, 0, 15, 0, 1)
	tr.Control(630, KindSolDBHit, 0, 15, 0, 3)
	tr.Control(640, KindSolDBMiss, 0, 15, 0, 3)
	tr.Control(650, KindSolDBSave, 0, 15, 0, 4)
	tr.Control(660, KindRecovery, 0, 15, 5000, 0)
	tr.Control(670, KindPathFail, 0, 15, 0, 0)
	tr.Control(680, KindWatchdog, 0, 15, 0, 0)
	tr.RouterEvent(700, KindPredAck, 3, 1, 2)
	tr.RouterEvent(710, KindLinkDown, 3, 1, 0)
	tr.RouterEvent(720, KindLinkUp, 3, 1, 0)
	tr.RouterEvent(730, KindLinkDegrade, 3, 1, 250)
	return tr
}

func TestWriteJSONLValidatesAndIsDeterministic(t *testing.T) {
	tr := buildSampleTrace()
	if len(Kinds()) != 18 {
		t.Fatalf("Kinds() lists %d kinds, expected 18", len(Kinds()))
	}
	var a, b bytes.Buffer
	if err := tr.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("JSONL serialization is not byte-stable")
	}
	n, err := ValidateTrace(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("emitted trace fails its own schema: %v", err)
	}
	if n != tr.Len() {
		t.Fatalf("validated %d events, tracer holds %d", n, tr.Len())
	}
}

func TestValidateTraceLineRejectsBadEvents(t *testing.T) {
	cases := map[string]string{
		"unknown kind":     `{"at":0,"run":0,"kind":"warp","pkt":-1,"src":0,"dst":1,"router":-1,"port":-1,"dur":0,"val":0}`,
		"missing field":    `{"at":0,"run":0,"kind":"inject","pkt":1,"src":0,"dst":1,"router":-1,"port":-1,"dur":0}`,
		"extra field":      `{"at":0,"run":0,"kind":"inject","pkt":1,"src":0,"dst":1,"router":-1,"port":-1,"dur":0,"val":0,"x":1}`,
		"negative time":    `{"at":-5,"run":0,"kind":"inject","pkt":1,"src":0,"dst":1,"router":-1,"port":-1,"dur":0,"val":0}`,
		"float packet id":  `{"at":0,"run":0,"kind":"inject","pkt":1.5,"src":0,"dst":1,"router":-1,"port":-1,"dur":0,"val":0}`,
		"not json":         `inject at t=0`,
		"trailing garbage": `{"at":0,"run":0,"kind":"inject","pkt":1,"src":0,"dst":1,"router":-1,"port":-1,"dur":0,"val":0} {}`,
	}
	for name, line := range cases {
		if err := ValidateTraceLine([]byte(line)); err == nil {
			t.Errorf("%s: validator accepted %s", name, line)
		}
	}
}

func TestWriteChromeTraceLoadsAsJSON(t *testing.T) {
	tr := buildSampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			ID   string  `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	var begins, ends, slices, instants int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "b":
			begins++
		case "e":
			ends++
		case "X":
			slices++
		case "i":
			instants++
		}
	}
	if begins != 2 || ends != 2 {
		t.Fatalf("async span pairs unbalanced: %d begins, %d ends", begins, ends)
	}
	if slices != 1 {
		t.Fatalf("want 1 hop slice, got %d", slices)
	}
	if instants == 0 {
		t.Fatal("control events should emit instants")
	}
}

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("net.dropped")
	c.Inc()
	c.Add(4)
	if r.Counter("net.dropped") != c {
		t.Fatal("Counter must return the same handle for a name")
	}
	depth := int64(7)
	r.Gauge("engine.queue_peak", func() int64 { return depth })
	snap := r.Snapshot()
	if snap["net.dropped"] != 5 {
		t.Fatalf("counter snapshot = %d, want 5", snap["net.dropped"])
	}
	if snap["engine.queue_peak"] != 7 {
		t.Fatalf("gauge snapshot = %d, want 7", snap["engine.queue_peak"])
	}
	depth = 11
	if r.Snapshot()["engine.queue_peak"] != 11 {
		t.Fatal("gauges must be read at snapshot time")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "engine.queue_peak" || names[1] != "net.dropped" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestManifestRoundTripValidates(t *testing.T) {
	m := NewManifest("abl.resilience", map[string]any{
		"topology": "mesh8x8", "policy": "pr-drb", "nodes": 64,
	})
	m.Seed = 42
	m.WallTimeSec = 1.25
	m.Metrics = map[string]int64{"engine.events_processed": 123456}
	m.Trace = &TraceInfo{File: "trace.jsonl", Chrome: "trace.chrome.json", Events: 99, Sample: 8}
	b, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateManifestBytes(b); err != nil {
		t.Fatalf("manifest fails its own schema: %v\n%s", err, b)
	}
	if m.GitDescribe == "" || m.GoVersion == "" || m.CreatedAt == "" {
		t.Fatal("environment stamps missing")
	}
}

func TestValidateManifestRejectsBadDocs(t *testing.T) {
	good := NewManifest("x", nil)
	good.Metrics = map[string]int64{"a": 1}
	base, err := json.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(m map[string]any)) []byte {
		var m map[string]any
		if err := json.Unmarshal(base, &m); err != nil {
			t.Fatal(err)
		}
		f(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := map[string][]byte{
		"wrong schema id": mutate(func(m map[string]any) { m["schema"] = "prdrb/other/v1" }),
		"missing seed":    mutate(func(m map[string]any) { delete(m, "seed") }),
		"string metric":   mutate(func(m map[string]any) { m["metrics"] = map[string]any{"a": "lots"} }),
		"unknown field":   mutate(func(m map[string]any) { m["extra"] = true }),
		"negative wall":   mutate(func(m map[string]any) { m["wall_time_sec"] = -1 }),
	}
	for name, doc := range cases {
		if err := ValidateManifestBytes(doc); err == nil {
			t.Errorf("%s: validator accepted bad manifest", name)
		}
	}
}

func TestSchemaEnumMatchesKinds(t *testing.T) {
	var schema struct {
		Properties struct {
			Kind struct {
				Enum []string `json:"enum"`
			} `json:"kind"`
		} `json:"properties"`
	}
	if err := json.Unmarshal(TraceEventSchema(), &schema); err != nil {
		t.Fatal(err)
	}
	want := Kinds()
	if len(schema.Properties.Kind.Enum) != len(want) {
		t.Fatalf("schema enum has %d kinds, code has %d", len(schema.Properties.Kind.Enum), len(want))
	}
	set := map[string]bool{}
	for _, k := range schema.Properties.Kind.Enum {
		set[k] = true
	}
	for _, k := range want {
		if !set[string(k)] {
			t.Errorf("kind %q missing from schema enum", k)
		}
	}
}

func TestTelemetryBundle(t *testing.T) {
	off := New(Options{})
	if off.Tracer != nil {
		t.Fatal("tracing must stay off unless requested")
	}
	if off.Registry == nil {
		t.Fatal("registry must always be wired")
	}
	on := New(Options{Trace: true, Sample: 8})
	if on.Tracer == nil || on.Tracer.Sample() != 8 {
		t.Fatalf("traced bundle misconfigured: %+v", on.Tracer)
	}
}

func TestControlEventsCarryVirtualTimeOnly(t *testing.T) {
	tr := NewTracer(1)
	tr.Control(sim.Time(1500), KindRecovery, 2, 9, sim.Time(300), 0)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	want := `{"at":1500,"run":0,"kind":"recovery","pkt":-1,"src":2,"dst":9,"router":-1,"port":-1,"dur":300,"val":0,"mpi":0}`
	if line != want {
		t.Fatalf("serialized event drifted:\n got %s\nwant %s", line, want)
	}
}
