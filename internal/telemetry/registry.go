package telemetry

import "sort"

// Counter is a monotonically increasing named metric. Holders keep the
// *Counter resolved at wiring time; incrementing is one add, no map
// lookup.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add folds d in.
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// HistSnapshot is a point-in-time histogram state for exposition:
// cumulative sample counts at ascending upper bounds, plus the total count
// and the sum of all samples. Bounds may cover any subset of the source
// histogram's buckets as long as counts stay cumulative — the Prometheus
// bucket contract.
type HistSnapshot struct {
	// Bounds are bucket upper bounds in ascending order (the `le` label
	// values); Counts[i] is the number of samples <= Bounds[i].
	Bounds []float64
	Counts []int64
	// Count is the total number of samples (the implicit +Inf bucket);
	// Sum is the sum of every sample.
	Count int64
	Sum   float64
}

// Registry is a wiring-time metrics registry: named counters owned by the
// registry, and gauges and histograms read through callbacks at snapshot
// time. Gauges make existing state (engine counters, pool high-water
// marks, controller stats) observable with zero hot-path cost — nothing is
// recorded until a snapshot is taken.
//
// The registry is not safe for concurrent use: each simulation wires its
// own, and a sweep sharing one must snapshot between runs.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]func() int64
	hists    map[string]func() HistSnapshot
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
		hists:    make(map[string]func() HistSnapshot),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers fn as the reader of the named gauge. Re-registering a
// name replaces the reader (a sweep re-wiring per run keeps the latest
// simulation's view).
func (r *Registry) Gauge(name string, fn func() int64) {
	r.gauges[name] = fn
}

// Histogram registers fn as the reader of the named distribution.
// Re-registering a name replaces the reader, mirroring Gauge.
func (r *Registry) Histogram(name string, fn func() HistSnapshot) {
	r.hists[name] = fn
}

// SnapshotHistograms evaluates every registered histogram reader into a
// name -> snapshot map.
func (r *Registry) SnapshotHistograms() map[string]HistSnapshot {
	if len(r.hists) == 0 {
		return nil
	}
	out := make(map[string]HistSnapshot, len(r.hists))
	for n, fn := range r.hists {
		out[n] = fn()
	}
	return out
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		if _, dup := r.counters[n]; !dup {
			names = append(names, n)
		}
	}
	for n := range r.hists {
		if _, dupC := r.counters[n]; dupC {
			continue
		}
		if _, dupG := r.gauges[n]; dupG {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot evaluates every counter and gauge into a name -> value map.
// A name registered both ways reports the counter (counters are explicit
// state; a clashing gauge is a wiring bug not worth panicking over).
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for n, fn := range r.gauges {
		out[n] = fn()
	}
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	return out
}
