package telemetry

import "sort"

// Counter is a monotonically increasing named metric. Holders keep the
// *Counter resolved at wiring time; incrementing is one add, no map
// lookup.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add folds d in.
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Registry is a wiring-time metrics registry: named counters owned by the
// registry and gauges read through callbacks at snapshot time. Gauges make
// existing state (engine counters, pool high-water marks, controller
// stats) observable with zero hot-path cost — nothing is recorded until a
// snapshot is taken.
//
// The registry is not safe for concurrent use: each simulation wires its
// own, and a sweep sharing one must snapshot between runs.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge registers fn as the reader of the named gauge. Re-registering a
// name replaces the reader (a sweep re-wiring per run keeps the latest
// simulation's view).
func (r *Registry) Gauge(name string, fn func() int64) {
	r.gauges[name] = fn
}

// Names returns every registered metric name, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		if _, dup := r.counters[n]; !dup {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Snapshot evaluates every counter and gauge into a name -> value map.
// A name registered both ways reports the counter (counters are explicit
// state; a clashing gauge is a wiring bug not worth panicking over).
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for n, fn := range r.gauges {
		out[n] = fn()
	}
	for n, c := range r.counters {
		out[n] = c.Value()
	}
	return out
}
