package telemetry

// Kind names a trace event type. The set covers the packet lifecycle
// (inject -> per-hop -> deliver/drop) and the PR-DRB control plane
// (saturation detection, metapath reconfiguration, solution-database
// traffic, fault transitions, recovery completion).
type Kind string

// Packet lifecycle events.
const (
	// KindInject: a data packet entered its source NIC queue.
	// pkt/src/dst set; val = packet size in bytes.
	KindInject Kind = "inject"
	// KindHop: the packet started transmission at a router output port
	// after waiting in its buffers. pkt/router/port set; dur = queue wait.
	KindHop Kind = "hop"
	// KindDeliver: the packet reached its destination NIC.
	// pkt/src/dst set; dur = end-to-end latency since creation.
	KindDeliver Kind = "deliver"
	// KindDrop: the packet died on a failed link. pkt/src/dst/router set.
	KindDrop Kind = "drop"
	// KindUnreachable: a message was refused at injection because no
	// healthy route existed. src/dst set.
	KindUnreachable Kind = "unreachable"
)

// PR-DRB control events (src is the controller's node, dst the metapath's
// destination unless stated otherwise).
const (
	// KindSaturation: a metapath entered the HIGH congestion zone.
	// dur = the metapath latency sample that crossed the threshold (0 when
	// the transition came from a latency-free signal: predictive ACK,
	// watchdog, path loss).
	KindSaturation Kind = "saturation"
	// KindMetapathOpen: an alternative path was opened. val = path count
	// after opening.
	KindMetapathOpen Kind = "mp-open"
	// KindMetapathClose: an alternative path was closed (relaxation or
	// dead-path pruning). val = path count after closing.
	KindMetapathClose Kind = "mp-close"
	// KindSolDBHit: a saved solution matched the current contention
	// pattern and was re-applied wholesale. val = database size.
	KindSolDBHit Kind = "soldb-hit"
	// KindSolDBMiss: the database had no match for a HIGH-zone entry.
	// val = database size.
	KindSolDBMiss Kind = "soldb-miss"
	// KindSolDBSave: the path set that resolved a congestion episode was
	// saved. val = database size after saving.
	KindSolDBSave Kind = "soldb-save"
	// KindRecovery: first successful ACK after a path failure — the
	// metapath recovered. dur = failure-to-recovery latency.
	KindRecovery Kind = "recovery"
	// KindPathFail: the controller learned one of its paths died
	// (in-flight loss or dead-path detection at injection).
	KindPathFail Kind = "path-fail"
	// KindWatchdog: the FR-DRB watchdog fired (outstanding traffic, no
	// ACK within the window).
	KindWatchdog Kind = "watchdog"
	// KindPredAck: a congested router originated predictive ACKs (GPA).
	// router/port set; val = number of contending flows reported.
	KindPredAck Kind = "pred-ack"
)

// Fault transitions (router/port set; val carries the degrade factor in
// thousandths for KindLinkDegrade).
const (
	KindLinkDown    Kind = "link-down"
	KindLinkUp      Kind = "link-up"
	KindLinkDegrade Kind = "link-degrade"
)

// Kinds lists every event kind (the schema's enum is generated from the
// same set the validator checks).
func Kinds() []Kind {
	return []Kind{
		KindInject, KindHop, KindDeliver, KindDrop, KindUnreachable,
		KindSaturation, KindMetapathOpen, KindMetapathClose,
		KindSolDBHit, KindSolDBMiss, KindSolDBSave,
		KindRecovery, KindPathFail, KindWatchdog, KindPredAck,
		KindLinkDown, KindLinkUp, KindLinkDegrade,
	}
}

// Event is one trace record. Every field is always serialized (no
// omitempty): node 0 and router 0 are valid identities, and a fixed shape
// keeps the JSONL schema trivial and the byte stream deterministic.
// Fields that do not apply to a kind hold -1 (identities) or 0
// (durations/values).
type Event struct {
	// At is the virtual timestamp in nanoseconds.
	At int64 `json:"at"`
	// Run distinguishes simulations sharing one tracer (a sweep traces
	// several fixed-seed runs into one file); 0 for single-run traces.
	Run int `json:"run"`
	// Kind is the event type.
	Kind Kind `json:"kind"`
	// Pkt is the packet ID within the run, -1 for non-packet events.
	Pkt int64 `json:"pkt"`
	// Src / Dst are terminal node IDs (-1 when not applicable).
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Router / Port locate hop, drop, fault and GPA events (-1 otherwise).
	Router int `json:"router"`
	Port   int `json:"port"`
	// Dur is the event's duration payload in nanoseconds (queue wait,
	// end-to-end latency, recovery time); 0 when not applicable.
	Dur int64 `json:"dur"`
	// Val is the event's scalar payload (bytes, path count, DB size,
	// contending-flow count, degrade factor in thousandths).
	Val int64 `json:"val"`
	// Mpi is the §3.3.1 MPI_type header value of the packet's logical MPI
	// call for deliver events (network.MPITypeName names it); 0 for
	// non-packet events, untyped packets and traces recorded before the
	// field existed.
	Mpi int `json:"mpi"`
}
