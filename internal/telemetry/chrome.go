package telemetry

import (
	"encoding/json"
	"io"
)

// Chrome trace-event serialization, shared by every Perfetto-compatible
// writer in the repo: the packet/control tracer (WriteChromeTrace) and
// the wall-clock engine profiler (internal/perf). Producers build
// []ChromeEvent and hand it to WriteChromeEvents; the envelope and field
// encoding live here so every trace opens in the same UI.

// ChromeEvent is one Chrome trace-event record (the JSON object format
// Perfetto's legacy importer reads). Timestamps and durations are in
// microseconds.
type ChromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// ProcessNameEvent returns the metadata record naming a process (track
// group) in the trace viewer.
func ProcessNameEvent(pid int, name string) ChromeEvent {
	return ChromeEvent{Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": name}}
}

// ThreadNameEvent returns the metadata record naming one track (thread)
// within a process group.
func ThreadNameEvent(pid, tid int, name string) ChromeEvent {
	return ChromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

// Us converts nanoseconds (virtual or wall) to the microsecond timestamps
// Chrome traces use.
func Us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeEvents serializes events inside the standard trace envelope.
// The file loads directly in Perfetto and chrome://tracing.
func WriteChromeEvents(w io.Writer, events []ChromeEvent) error {
	out := struct {
		TraceEvents     []ChromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	if out.TraceEvents == nil {
		out.TraceEvents = []ChromeEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}
