package telemetry

import (
	"sync"
	"sync/atomic"
)

// Live status plane. The simulation never serves HTTP from its own
// goroutines: sampler actors (wired by the runner) evaluate simulation
// state at deterministic virtual-time intervals, on the goroutine that
// owns that state, and publish plain-data snapshots into a mutex-guarded
// Board. HTTP handlers read only the Board, never live simulation state —
// so the status server cannot race the hot path, and a simulation built
// without a Board carries a nil handle and pays nothing.

// ShardStatus is one shard engine's position within the conservative
// parallel execution: its local virtual clock and the bounds of the
// lookahead window it was last observed in. For a serial run there is a
// single entry whose window spans the whole horizon.
type ShardStatus struct {
	Shard int `json:"shard"`
	// AtNs is the shard's local virtual clock at sample time.
	AtNs int64 `json:"at_ns"`
	// WindowStartNs/WindowEndNs bound the barrier window the sample was
	// taken in; WindowStartNs <= AtNs <= WindowEndNs always holds.
	WindowStartNs int64 `json:"window_start_ns"`
	WindowEndNs   int64 `json:"window_end_ns"`
	// Processed is the shard's cumulative executed-event count.
	Processed uint64 `json:"processed"`
	// Pending is the shard's local queue length at sample time.
	Pending int `json:"pending"`
}

// PerfShardStatus is one shard's wall-clock accounting from the engine
// profiler: time spent executing windows vs. waiting at barriers. All
// fields are wall-derived and therefore non-deterministic.
type PerfShardStatus struct {
	Shard int `json:"shard"`
	// Events is the number of events the shard executed inside profiled
	// windows (deterministic, unlike the times below).
	Events uint64 `json:"events"`
	// BusyNs is wall time spent executing window events; IdleNs is wall
	// time spent waiting at barriers for slower shards (≈ imbalance).
	BusyNs int64 `json:"busy_ns"`
	IdleNs int64 `json:"idle_ns"`
	// EventsPerSec is the shard's execution rate over its busy time.
	EventsPerSec float64 `json:"events_per_sec"`
	// WindowP50Ns/WindowP99Ns are percentiles of the shard's per-window
	// wall execution time.
	WindowP50Ns float64 `json:"window_p50_ns"`
	WindowP99Ns float64 `json:"window_p99_ns"`
}

// PerfStatus is the engine profiler's live snapshot: where wall-clock
// time goes inside the window/barrier loop. Present on Status only when
// a profiler is attached.
type PerfStatus struct {
	// Windows counts completed barrier windows (deterministic).
	Windows uint64 `json:"windows"`
	// WallNs is wall time spent inside profiled Execute calls.
	WallNs int64 `json:"wall_ns"`
	// CtrlNs/HookNs/FlushNs split the single-threaded barrier cost:
	// barrier-task execution, OnBarrier hooks, and the ring flush.
	CtrlNs  int64 `json:"ctrl_ns"`
	HookNs  int64 `json:"hook_ns"`
	FlushNs int64 `json:"flush_ns"`
	// RemoteRecords counts cross-shard handoffs flushed (deterministic).
	RemoteRecords uint64 `json:"remote_records"`
	// ImbalanceRatio is max per-shard busy time over the mean (1 =
	// perfectly balanced); IdleFraction is total barrier-wait over total
	// shard wall time; EffectiveSpeedup is total busy time over the
	// windowed wall time (the parallelism actually realized).
	ImbalanceRatio   float64           `json:"imbalance_ratio"`
	IdleFraction     float64           `json:"idle_fraction"`
	EffectiveSpeedup float64           `json:"effective_speedup"`
	Shards           []PerfShardStatus `json:"shards,omitempty"`
}

// Status is one published snapshot of a running simulation.
type Status struct {
	// Seq increments with every publish; SSE clients use it to detect
	// fresh snapshots.
	Seq uint64 `json:"seq"`
	// VirtualNs is the simulation clock at sample time (the barrier clock
	// for sharded runs).
	VirtualNs int64 `json:"virtual_ns"`
	// EventsProcessed is the cumulative executed-event count.
	EventsProcessed uint64 `json:"events_processed"`
	// EventsPerSec is the wall-clock event rate, filled in by the server
	// at serve time (the only wall-derived field; the sampler never reads
	// the wall clock).
	EventsPerSec float64 `json:"events_per_sec"`
	// Packet accounting: offered (injected), delivered and dropped so
	// far, and packet records currently in flight.
	OfferedPkts   int64 `json:"offered_pkts"`
	DeliveredPkts int64 `json:"delivered_pkts"`
	DroppedPkts   int64 `json:"dropped_pkts"`
	InFlightPkts  int64 `json:"in_flight_pkts"`
	// Fault state: links currently down or running degraded.
	FailedLinks   int `json:"failed_links"`
	DegradedLinks int `json:"degraded_links"`
	// PR-DRB control state: metapaths currently open and the extra
	// (alternative) paths they have injected.
	OpenMetapaths  int `json:"open_metapaths"`
	OpenExtraPaths int `json:"open_extra_paths"`
	// QueuedBytes sums router queue occupancy at sample time.
	QueuedBytes int64 `json:"queued_bytes"`
	// Shards carries per-shard window positions (one entry for serial
	// runs).
	Shards []ShardStatus `json:"shards,omitempty"`
	// RingDepths is the cross-shard handoff ring occupancy sampled at the
	// last barrier, flattened src*N+dst. Empty for serial runs.
	RingDepths []int `json:"ring_depths,omitempty"`
	// Perf carries the engine profiler's wall-clock accounting when a
	// profiler is attached (nil otherwise — the common case).
	Perf *PerfStatus `json:"perf,omitempty"`
}

// FleetCellStatus is one campaign cell's live position in the grid.
type FleetCellStatus struct {
	// Cell is the grid cell's name (topology/policy/pattern/rate/seed).
	Cell string `json:"cell"`
	// State is "running", "done", "failed" or "skipped" (already complete
	// when the campaign started).
	State string `json:"state"`
	// VirtualNs is the cell simulation's clock at the last checkpoint or
	// progress tick; HorizonNs is where the run ends.
	VirtualNs int64 `json:"virtual_ns"`
	HorizonNs int64 `json:"horizon_ns"`
}

// FleetStatus is a campaign's aggregate view: how many simulations are
// running, done or failed, plus per-cell positions. Published by the
// campaign scheduler, served at /fleet.
type FleetStatus struct {
	// Seq increments with every publish (stamped by the Board).
	Seq uint64 `json:"seq"`
	// Campaign is the campaign key (manifest content hash).
	Campaign string `json:"campaign"`
	Total    int    `json:"total"`
	Running  int    `json:"running"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Skipped  int    `json:"skipped"`
	// EventsProcessed aggregates executed events across all cell runs;
	// EventsPerSec is filled in by the server at serve time.
	EventsProcessed int64             `json:"events_processed"`
	EventsPerSec    float64           `json:"events_per_sec"`
	Cells           []FleetCellStatus `json:"cells,omitempty"`
}

// Board is the handoff point between sampler actors and the HTTP server:
// samplers publish under the lock, handlers copy out under the lock.
// A nil *Board is inert — every method no-ops — so wiring stays nil-safe
// like the Tracer.
type Board struct {
	mu      sync.Mutex
	seq     uint64
	status  Status
	have    bool
	scalars map[string]int64
	hists   map[string]HistSnapshot

	fleetSeq  uint64
	fleet     FleetStatus
	haveFleet bool

	congSeq  uint64
	cong     CongestionStatus
	haveCong bool
}

// NewBoard returns an empty board.
func NewBoard() *Board { return &Board{} }

// PublishStatus stores s as the latest snapshot, stamping its Seq.
func (b *Board) PublishStatus(s Status) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	s.Seq = b.seq
	b.status = s
	b.have = true
	b.mu.Unlock()
}

// PublishMetrics stores the latest registry snapshot for /metrics. The
// maps are retained; callers must hand over ownership (snapshots are
// freshly built per publish).
func (b *Board) PublishMetrics(scalars map[string]int64, hists map[string]HistSnapshot) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.scalars = scalars
	b.hists = hists
	b.mu.Unlock()
}

// PublishFleet stores f as the latest campaign fleet view, stamping its
// Seq.
func (b *Board) PublishFleet(f FleetStatus) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.fleetSeq++
	f.Seq = b.fleetSeq
	b.fleet = f
	b.haveFleet = true
	b.mu.Unlock()
}

// Fleet returns the most recent fleet view and whether one was ever
// published.
func (b *Board) Fleet() (FleetStatus, bool) {
	if b == nil {
		return FleetStatus{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	f := b.fleet
	f.Cells = append([]FleetCellStatus(nil), f.Cells...)
	return f, b.haveFleet
}

// Latest returns the most recent status and whether one was ever
// published.
func (b *Board) Latest() (Status, bool) {
	if b == nil {
		return Status{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.status
	// Copy the slices: the publisher may reuse backing arrays on the next
	// tick, and handlers serialize outside the lock.
	s.Shards = append([]ShardStatus(nil), s.Shards...)
	s.RingDepths = append([]int(nil), s.RingDepths...)
	if s.Perf != nil {
		p := *s.Perf
		p.Shards = append([]PerfShardStatus(nil), p.Shards...)
		s.Perf = &p
	}
	return s, b.have
}

// Metrics returns the most recent registry snapshot (possibly nil maps if
// none was published yet).
func (b *Board) Metrics() (map[string]int64, map[string]HistSnapshot) {
	if b == nil {
		return nil, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.scalars, b.hists
}

// LiveStats is the cheap cross-goroutine progress feed: atomic counters a
// simulation adds to at cold-path moments (run completion, barrier ticks)
// and readers (the status server's rate estimator, the experiments
// progress line) sample from any goroutine. A nil *LiveStats no-ops.
type LiveStats struct {
	// Events is the cumulative executed-event count across all runs.
	Events atomic.Int64
	// VirtualNs is the latest simulation clock reading.
	VirtualNs atomic.Int64
	// Runs counts completed experiment runs.
	Runs atomic.Int64
}

// AddEvents folds a completed batch into the feed.
func (l *LiveStats) AddEvents(n int64) {
	if l == nil {
		return
	}
	l.Events.Add(n)
}

// SetVirtual records the latest virtual clock.
func (l *LiveStats) SetVirtual(ns int64) {
	if l == nil {
		return
	}
	l.VirtualNs.Store(ns)
}

// AddRun counts one completed run.
func (l *LiveStats) AddRun() {
	if l == nil {
		return
	}
	l.Runs.Add(1)
}
