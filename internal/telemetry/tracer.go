package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"prdrb/internal/sim"
)

// Tracer records trace events in memory. Every method is nil-safe: a nil
// *Tracer is the disabled state and costs one pointer comparison, so
// instrumentation sites need no separate enabled flag.
//
// The tracer is not safe for concurrent use; a traced sweep must run its
// simulations sequentially (cmd/experiments forces this when -trace is
// set).
type Tracer struct {
	sample uint64
	run    int
	labels []string // one label per run
	events []Event
}

// NewTracer returns a tracer keeping 1-in-sample packets (sample <= 1
// keeps all).
func NewTracer(sample int) *Tracer {
	if sample < 1 {
		sample = 1
	}
	return &Tracer{sample: uint64(sample), run: -1, labels: []string{}}
}

// Sample returns the tracer's 1-in-N packet sampling divisor (1 = all).
func (t *Tracer) Sample() int {
	if t == nil {
		return 0
	}
	return int(t.sample)
}

// BeginRun opens a new run scope: subsequent events carry the next run
// index. Call once per simulation sharing this tracer.
func (t *Tracer) BeginRun(label string) {
	if t == nil {
		return
	}
	t.run++
	t.labels = append(t.labels, label)
}

// Sampled reports whether packet id is in the trace sample. False on a nil
// tracer, so hot paths gate packet emissions with this single call.
func (t *Tracer) Sampled(pkt uint64) bool {
	return t != nil && pkt%t.sample == 0
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events returns the recorded event log (the tracer retains ownership).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// RunLabels returns the label of every run scope opened with BeginRun.
func (t *Tracer) RunLabels() []string {
	if t == nil {
		return nil
	}
	return t.labels
}

func (t *Tracer) emit(ev Event) {
	if t.run > 0 {
		ev.Run = t.run
	}
	t.events = append(t.events, ev)
}

// PacketInjected records a data packet entering its source NIC queue.
func (t *Tracer) PacketInjected(at sim.Time, pkt uint64, src, dst, bytes int) {
	if t == nil {
		return
	}
	t.emit(Event{At: int64(at), Kind: KindInject, Pkt: int64(pkt),
		Src: src, Dst: dst, Router: -1, Port: -1, Val: int64(bytes)})
}

// PacketHop records a packet starting transmission at a router port after
// waiting in its output buffers.
func (t *Tracer) PacketHop(at sim.Time, pkt uint64, router, port int, wait sim.Time) {
	if t == nil {
		return
	}
	t.emit(Event{At: int64(at), Kind: KindHop, Pkt: int64(pkt),
		Src: -1, Dst: -1, Router: router, Port: port, Dur: int64(wait)})
}

// PacketDelivered records a packet reaching its destination NIC. mpi is
// the packet's MPI_type header value (0 = untyped synthetic traffic).
func (t *Tracer) PacketDelivered(at sim.Time, pkt uint64, src, dst int, latency sim.Time, mpi uint8) {
	if t == nil {
		return
	}
	t.emit(Event{At: int64(at), Kind: KindDeliver, Pkt: int64(pkt),
		Src: src, Dst: dst, Router: -1, Port: -1, Dur: int64(latency), Mpi: int(mpi)})
}

// PacketDropped records a packet lost on a failed link at router.
func (t *Tracer) PacketDropped(at sim.Time, pkt uint64, src, dst, router int) {
	if t == nil {
		return
	}
	t.emit(Event{At: int64(at), Kind: KindDrop, Pkt: int64(pkt),
		Src: src, Dst: dst, Router: router, Port: -1})
}

// Unreachable records a message refused at injection for lack of any
// healthy route.
func (t *Tracer) Unreachable(at sim.Time, src, dst int) {
	if t == nil {
		return
	}
	t.emit(Event{At: int64(at), Kind: KindUnreachable, Pkt: -1,
		Src: src, Dst: dst, Router: -1, Port: -1})
}

// Control records a PR-DRB controller decision at node toward dst.
func (t *Tracer) Control(at sim.Time, kind Kind, node, dst int, dur sim.Time, val int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: int64(at), Kind: kind, Pkt: -1,
		Src: node, Dst: dst, Router: -1, Port: -1, Dur: int64(dur), Val: val})
}

// RouterEvent records a router-located control event: fault transitions
// and GPA predictive-ACK generation.
func (t *Tracer) RouterEvent(at sim.Time, kind Kind, router, port int, val int64) {
	if t == nil {
		return
	}
	t.emit(Event{At: int64(at), Kind: kind, Pkt: -1,
		Src: -1, Dst: -1, Router: router, Port: port, Val: val})
}

// WriteJSONL serializes the event log as JSON Lines, one event per line,
// in emission order. The output of a fixed-seed run is byte-stable.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for i := range t.events {
		b, err := json.Marshal(&t.events[i])
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Synthetic process IDs grouping the trace rows in Perfetto. Pids 1-3
// belong to the packet tracer; the engine profiler (internal/perf) uses
// its own pid so both traces can be concatenated without track clashes.
const (
	chromePidPackets = 1 // async packet spans, one track per source node
	chromePidRouters = 2 // per-router hop slices (dur = queue wait)
	chromePidControl = 3 // instant control/fault events
)

// WriteChromeTrace serializes the event log in Chrome trace-event format:
// packet lifecycles become async spans (b/e pairs keyed by run:packet),
// hops become duration slices on their router's track, and control/fault
// events become instants. The file loads directly in Perfetto.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	events := []ChromeEvent{
		ProcessNameEvent(chromePidPackets, "packets (by source node)"),
		ProcessNameEvent(chromePidRouters, "routers (hop queue waits)"),
		ProcessNameEvent(chromePidControl, "control plane"),
	}
	for i := range t.events {
		ev := &t.events[i]
		id := fmt.Sprintf("%d:%d", ev.Run, ev.Pkt)
		switch ev.Kind {
		case KindInject:
			events = append(events, ChromeEvent{
				Name: fmt.Sprintf("pkt %d->%d", ev.Src, ev.Dst), Cat: "packet",
				Ph: "b", Ts: Us(ev.At), Pid: chromePidPackets, Tid: ev.Src, ID: id,
				Args: map[string]any{"bytes": ev.Val},
			})
		case KindDeliver, KindDrop:
			args := map[string]any{"latency_ns": ev.Dur}
			if ev.Kind == KindDrop {
				args = map[string]any{"dropped_at_router": ev.Router}
			}
			events = append(events, ChromeEvent{
				Name: fmt.Sprintf("pkt %d->%d", ev.Src, ev.Dst), Cat: "packet",
				Ph: "e", Ts: Us(ev.At), Pid: chromePidPackets, Tid: ev.Src, ID: id,
				Args: args,
			})
		case KindHop:
			events = append(events, ChromeEvent{
				Name: fmt.Sprintf("hop pkt %d", ev.Pkt), Cat: "hop",
				Ph: "X", Ts: Us(ev.At - ev.Dur), Dur: Us(ev.Dur),
				Pid: chromePidRouters, Tid: ev.Router,
				Args: map[string]any{"port": ev.Port, "wait_ns": ev.Dur},
			})
		default:
			tid := ev.Src
			if tid < 0 {
				tid = ev.Router
			}
			if tid < 0 {
				tid = 0
			}
			events = append(events, ChromeEvent{
				Name: string(ev.Kind), Cat: "control",
				Ph: "i", Ts: Us(ev.At), Pid: chromePidControl, Tid: tid, S: "t",
				Args: map[string]any{"src": ev.Src, "dst": ev.Dst,
					"router": ev.Router, "dur_ns": ev.Dur, "val": ev.Val},
			})
		}
	}
	return WriteChromeEvents(w, events)
}
