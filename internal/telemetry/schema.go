package telemetry

import (
	"bufio"
	"bytes"
	_ "embed"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// The checked-in schemas the emitted artifacts validate against. They are
// standard JSON Schema (draft-07 subset) so external tooling can consume
// them too; the in-tree validator below implements exactly the subset the
// schemas use, keeping the repo dependency-free.

//go:embed schema/trace-event.schema.json
var traceEventSchemaJSON []byte

//go:embed schema/run-manifest.schema.json
var runManifestSchemaJSON []byte

// TraceEventSchema returns the JSON Schema for one JSONL trace line.
func TraceEventSchema() []byte { return traceEventSchemaJSON }

// RunManifestSchema returns the JSON Schema for run-manifest.json.
func RunManifestSchema() []byte { return runManifestSchemaJSON }

// ValidateAgainstSchema checks decoded JSON doc against schemaJSON. The
// validator supports the draft-07 subset the embedded schemas use: type,
// enum, required, properties, additionalProperties (false or a schema),
// items, and minimum.
func ValidateAgainstSchema(schemaJSON []byte, doc any) error {
	var schema map[string]any
	dec := json.NewDecoder(bytes.NewReader(schemaJSON))
	dec.UseNumber()
	if err := dec.Decode(&schema); err != nil {
		return fmt.Errorf("telemetry: bad schema: %w", err)
	}
	return validateNode(schema, doc, "$")
}

// decodeJSON decodes b preserving number fidelity (json.Number, so
// 64-bit integers survive the round trip).
func decodeJSON(b []byte, into *any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.UseNumber()
	if err := dec.Decode(into); err != nil {
		return err
	}
	// Reject trailing garbage after the value.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON value")
	}
	return nil
}

func validateNode(schema map[string]any, doc any, path string) error {
	if typ, ok := schema["type"].(string); ok {
		if err := checkType(typ, doc, path); err != nil {
			return err
		}
	}
	if enum, ok := schema["enum"].([]any); ok {
		if err := checkEnum(enum, doc, path); err != nil {
			return err
		}
	}
	if min, ok := schema["minimum"].(json.Number); ok {
		if err := checkMinimum(min, doc, path); err != nil {
			return err
		}
	}
	if obj, ok := doc.(map[string]any); ok {
		if err := validateObject(schema, obj, path); err != nil {
			return err
		}
	}
	if arr, ok := doc.([]any); ok {
		if items, ok := schema["items"].(map[string]any); ok {
			for i, it := range arr {
				if err := validateNode(items, it, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func validateObject(schema map[string]any, obj map[string]any, path string) error {
	props, _ := schema["properties"].(map[string]any)
	if req, ok := schema["required"].([]any); ok {
		for _, r := range req {
			name, _ := r.(string)
			if _, present := obj[name]; !present {
				return fmt.Errorf("%s: missing required property %q", path, name)
			}
		}
	}
	for name, val := range obj {
		sub, known := props[name].(map[string]any)
		if known {
			if err := validateNode(sub, val, path+"."+name); err != nil {
				return err
			}
			continue
		}
		switch ap := schema["additionalProperties"].(type) {
		case bool:
			if !ap {
				return fmt.Errorf("%s: unknown property %q", path, name)
			}
		case map[string]any:
			if err := validateNode(ap, val, path+"."+name); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkType(typ string, doc any, path string) error {
	ok := false
	switch typ {
	case "object":
		_, ok = doc.(map[string]any)
	case "array":
		_, ok = doc.([]any)
	case "string":
		_, ok = doc.(string)
	case "boolean":
		_, ok = doc.(bool)
	case "number":
		_, ok = doc.(json.Number)
	case "integer":
		if n, isNum := doc.(json.Number); isNum {
			if _, err := n.Int64(); err == nil {
				ok = true
			} else if f, err := n.Float64(); err == nil {
				// Large uint64s overflow Int64 but are still integral.
				ok = f == math.Trunc(f)
			}
		}
	case "null":
		ok = doc == nil
	default:
		return fmt.Errorf("%s: schema uses unsupported type %q", path, typ)
	}
	if !ok {
		return fmt.Errorf("%s: want %s, got %T (%v)", path, typ, doc, doc)
	}
	return nil
}

func checkEnum(enum []any, doc any, path string) error {
	for _, e := range enum {
		if es, ok := e.(string); ok {
			if ds, ok := doc.(string); ok && ds == es {
				return nil
			}
		}
	}
	return fmt.Errorf("%s: value %v not in enum", path, doc)
}

func checkMinimum(min json.Number, doc any, path string) error {
	n, ok := doc.(json.Number)
	if !ok {
		return nil // type check reports the real problem
	}
	nv, err1 := n.Float64()
	mv, err2 := min.Float64()
	if err1 != nil || err2 != nil {
		return nil
	}
	if nv < mv {
		return fmt.Errorf("%s: value %v below minimum %v", path, n, min)
	}
	return nil
}

// ValidateTraceLine validates one JSONL line against the trace-event
// schema.
func ValidateTraceLine(line []byte) error {
	var doc any
	if err := decodeJSON(line, &doc); err != nil {
		return err
	}
	return ValidateAgainstSchema(traceEventSchemaJSON, doc)
}

// ValidateTrace validates every line of a JSONL trace stream and returns
// the number of events seen.
func ValidateTrace(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	n := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if err := ValidateTraceLine(line); err != nil {
			return n, fmt.Errorf("line %d: %w", n+1, err)
		}
		n++
	}
	return n, sc.Err()
}

// ValidateTraceFile validates a JSONL trace file against the trace-event
// schema, returning the number of events.
func ValidateTraceFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	return ValidateTrace(f)
}

// ValidateManifestBytes validates a serialized run manifest against the
// run-manifest schema.
func ValidateManifestBytes(b []byte) error {
	var doc any
	if err := decodeJSON(b, &doc); err != nil {
		return err
	}
	if err := ValidateAgainstSchema(runManifestSchemaJSON, doc); err != nil {
		return err
	}
	// The schema field must match what this code writes (enum already
	// pins it; double-check for a clearer error on version skew).
	if m, ok := doc.(map[string]any); ok {
		if s, _ := m["schema"].(string); !strings.HasPrefix(s, "prdrb/run-manifest/") {
			return fmt.Errorf("manifest schema id %q is not a run manifest", s)
		}
	}
	return nil
}

// ValidateManifestFile validates a run-manifest.json file.
func ValidateManifestFile(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return ValidateManifestBytes(b)
}
