package telemetry

import "testing"

// TestForkAbsorbMerge pins the deterministic time-ordered merge of shard
// tracer buffers, including run-scope inheritance and tie-breaking by
// shard index.
func TestForkAbsorbMerge(t *testing.T) {
	parent := NewTracer(1)
	parent.BeginRun("run0")
	parent.BeginRun("run1") // events below belong to run index 1
	a := parent.Fork()
	b := parent.Fork()
	a.PacketInjected(10, 1, 0, 1, 64)
	a.PacketDelivered(30, 1, 0, 1, 20, 0)
	b.PacketInjected(10, 2, 2, 3, 64)
	b.PacketInjected(20, 3, 2, 3, 64)
	parent.Absorb([]*Tracer{a, b})

	evs := parent.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	wantAt := []int64{10, 10, 20, 30}
	wantPkt := []int64{1, 2, 3, 1} // t=10 tie breaks by shard index: a before b
	for i, ev := range evs {
		if ev.At != wantAt[i] || ev.Pkt != wantPkt[i] {
			t.Fatalf("event %d = at %d pkt %d, want at %d pkt %d", i, ev.At, ev.Pkt, wantAt[i], wantPkt[i])
		}
		if ev.Run != 1 {
			t.Fatalf("event %d run %d, want 1", i, ev.Run)
		}
	}
	if a.Len() != 0 || b.Len() != 0 {
		t.Fatal("absorb must clear shard buffers")
	}

	// Successive absorption appends in time order.
	a.PacketInjected(40, 4, 0, 1, 64)
	parent.Absorb([]*Tracer{a, b})
	if parent.Len() != 5 || parent.Events()[4].At != 40 {
		t.Fatalf("second absorb: %d events", parent.Len())
	}
}

// TestForkNil pins that disabled telemetry stays free in sharded mode.
func TestForkNil(t *testing.T) {
	var nilT *Tracer
	if f := nilT.Fork(); f != nil {
		t.Fatal("nil fork must be nil")
	}
	nilT.Absorb([]*Tracer{nil, nil}) // must not panic
}
