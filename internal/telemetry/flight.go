package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
)

// Flight recorder: a bounded ring of recent cold-path control/packet
// events per router, kept cheap enough to leave on for 4096-node runs.
// Unlike the tracer — which samples packets and streams everything — the
// recorder retains only the last few events at every router and emits
// nothing unless an anomaly trigger fires (saturation onset, drop burst,
// credit-stall overrun; see the runner's congestion sampler), at which
// point the rings are snapshot into a dump for post-run JSONL export.
//
// Events are fixed-size values written into preallocated rings (the ring
// buffer itself is allocated lazily, once per router, on that router's
// first event), so recording never allocates in steady state. A nil
// *FlightRecorder no-ops, mirroring the Tracer.

// Flight event kinds. Values are stable report strings.
const (
	FlightDrop        = "drop"
	FlightStall       = "stall"
	FlightLinkDown    = "link_down"
	FlightLinkUp      = "link_up"
	FlightLinkDegrade = "link_degrade"
	FlightUnreachable = "unreachable"
	FlightPredAck     = "pred_ack"
	FlightPathOpen    = "metapath_open"
	FlightPathClose   = "metapath_close"
)

// FlightEvent is one recorded cold-path event. Router is -1 for
// NIC/injection-side events (those share one catch-all ring).
type FlightEvent struct {
	AtNs   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	Router int    `json:"router"`
	Port   int    `json:"port"`
	VC     int    `json:"vc"`
	Pkt    uint64 `json:"pkt,omitempty"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	// Val carries a kind-specific magnitude (queue wait, degrade factor
	// in milli-units, contending-flow count, ...).
	Val int64 `json:"val,omitempty"`
}

// flightRing is one router's bounded event history.
type flightRing struct {
	buf  []FlightEvent
	next int
	n    int // lifetime events recorded (may exceed len(buf))
}

// FlightRecorder holds one ring per router plus a catch-all ring for
// NIC-side events (index len(rings)-1, addressed as router -1).
type FlightRecorder struct {
	rings   []flightRing
	ringCap int
	events  int64
}

// NewFlightRecorder sizes a recorder for `routers` routers with ringCap
// retained events per router.
func NewFlightRecorder(routers, ringCap int) *FlightRecorder {
	if ringCap <= 0 {
		ringCap = 32
	}
	return &FlightRecorder{rings: make([]flightRing, routers+1), ringCap: ringCap}
}

// Record appends ev to its router's ring, evicting the oldest entry when
// full. Nil-safe.
func (f *FlightRecorder) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	idx := ev.Router
	if idx < 0 || idx >= len(f.rings)-1 {
		idx = len(f.rings) - 1
	}
	r := &f.rings[idx]
	if r.buf == nil {
		r.buf = make([]FlightEvent, 0, f.ringCap)
	}
	if len(r.buf) < f.ringCap {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
	}
	r.next++
	if r.next >= f.ringCap {
		r.next = 0
	}
	r.n++
	f.events++
}

// Events returns the lifetime event count (including evicted ones).
func (f *FlightRecorder) Events() int64 {
	if f == nil {
		return 0
	}
	return f.events
}

// Snapshot returns every retained event, oldest first within a router,
// routers in index order, then stably time-sorted — a deterministic
// flattening of the rings. Nil-safe (returns nil).
func (f *FlightRecorder) Snapshot() []FlightEvent {
	if f == nil {
		return nil
	}
	var out []FlightEvent
	for i := range f.rings {
		r := &f.rings[i]
		if len(r.buf) == 0 {
			continue
		}
		if r.n > len(r.buf) {
			// Ring wrapped: oldest entry sits at next.
			out = append(out, r.buf[r.next:]...)
			out = append(out, r.buf[:r.next]...)
		} else {
			out = append(out, r.buf...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtNs < out[j].AtNs })
	return out
}

// Reset clears every ring (dump consumers call it so consecutive dumps
// hold disjoint histories). Lifetime counts survive. Nil-safe.
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	for i := range f.rings {
		r := &f.rings[i]
		r.buf = r.buf[:0]
		r.next = 0
	}
}

// FlightDump is one triggered anomaly snapshot: the trigger that fired
// and the merged ring contents at that moment.
type FlightDump struct {
	AtNs    int64         `json:"at_ns"`
	Trigger string        `json:"trigger"`
	Detail  string        `json:"detail,omitempty"`
	Events  []FlightEvent `json:"events"`
}

// WriteFlightDumps writes dumps as JSONL, one dump per line — the
// post-run export format `prdrbtrace congestion -flight` reads.
func WriteFlightDumps(w io.Writer, dumps []FlightDump) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range dumps {
		if err := enc.Encode(&dumps[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
