package telemetry

import (
	"strings"
	"testing"
)

// TestExpositionGolden pins the exposition byte-for-byte: name
// sanitization, HELP escaping, sorted ordering, histogram bucket /
// sum / count shape.
func TestExpositionGolden(t *testing.T) {
	scalars := map[string]int64{
		"engine.events_processed": 42,
		"net.dropped_pkts":        0,
		"weird name\nwith\\stuff": -7,
	}
	hists := map[string]HistSnapshot{
		"latency.e2e_ns": {
			Bounds: []float64{100, 1000, 100000},
			Counts: []int64{3, 10, 11},
			Count:  12,
			Sum:    345678.5,
		},
	}
	var sb strings.Builder
	if err := WriteExposition(&sb, scalars, hists); err != nil {
		t.Fatal(err)
	}
	want := `# HELP prdrb_engine_events_processed prdrb metric engine.events_processed
# TYPE prdrb_engine_events_processed gauge
prdrb_engine_events_processed 42
# HELP prdrb_net_dropped_pkts prdrb metric net.dropped_pkts
# TYPE prdrb_net_dropped_pkts gauge
prdrb_net_dropped_pkts 0
# HELP prdrb_weird_name_with_stuff prdrb metric weird name\nwith\\stuff
# TYPE prdrb_weird_name_with_stuff gauge
prdrb_weird_name_with_stuff -7
# HELP prdrb_latency_e2e_ns prdrb histogram latency.e2e_ns
# TYPE prdrb_latency_e2e_ns histogram
prdrb_latency_e2e_ns_bucket{le="100"} 3
prdrb_latency_e2e_ns_bucket{le="1000"} 10
prdrb_latency_e2e_ns_bucket{le="100000"} 11
prdrb_latency_e2e_ns_bucket{le="+Inf"} 12
prdrb_latency_e2e_ns_sum 345678.5
prdrb_latency_e2e_ns_count 12
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// The golden must itself validate.
	n, err := ValidateExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("golden failed validation: %v", err)
	}
	if n != 9 {
		t.Errorf("validator counted %d samples, want 9", n)
	}
}

// TestExpositionDeterministic re-renders the same state and requires
// byte-identical output (map iteration order must not leak).
func TestExpositionDeterministic(t *testing.T) {
	scalars := map[string]int64{"b": 2, "a": 1, "c": 3, "zz.x": 9, "m.n": 4}
	hists := map[string]HistSnapshot{
		"h2": {Bounds: []float64{1}, Counts: []int64{1}, Count: 1, Sum: 1},
		"h1": {Bounds: []float64{2}, Counts: []int64{2}, Count: 2, Sum: 4},
	}
	var first string
	for i := 0; i < 8; i++ {
		var sb strings.Builder
		if err := WriteExposition(&sb, scalars, hists); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sb.String()
		} else if sb.String() != first {
			t.Fatalf("render %d differs from render 0", i)
		}
	}
}

// TestValidateExpositionRejects feeds structurally broken expositions and
// requires the validator to catch each.
func TestValidateExpositionRejects(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"illegal name", "9bad_name 1\n"},
		{"no value", "prdrb_x\n"},
		{"bad value", "prdrb_x notanumber\n"},
		{"non-cumulative buckets", `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_count 5
`},
		{"buckets out of order", `# TYPE h histogram
h_bucket{le="2"} 1
h_bucket{le="1"} 2
h_bucket{le="+Inf"} 2
h_count 2
`},
		{"missing +Inf", `# TYPE h histogram
h_bucket{le="1"} 1
h_count 1
`},
		{"inf != count", `# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 1
h_count 2
`},
		{"bucket without le", `# TYPE h histogram
h_bucket{vc="3"} 1
h_count 1
`},
	}
	for _, tc := range cases {
		if _, err := ValidateExposition(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: validator accepted broken input", tc.name)
		}
	}
}

// TestValidateExpositionAccepts checks benign variations parse: labels,
// timestamps, comments, +Inf spellings.
func TestValidateExpositionAccepts(t *testing.T) {
	in := `# some comment
# HELP m helps
# TYPE m gauge
m{a="x",b="y \"quoted\""} 1.5 1700000000
m_plain 2
# TYPE h histogram
h_bucket{le="0.5"} 0
h_bucket{le="+Inf"} 4
h_sum 12.5
h_count 4
`
	n, err := ValidateExposition(strings.NewReader(in))
	if err != nil {
		t.Fatalf("validator rejected benign input: %v", err)
	}
	if n != 6 {
		t.Errorf("counted %d samples, want 6", n)
	}
}

// TestRegistryHistograms covers the registry's histogram reader plumbing
// and Names() dedup.
func TestRegistryHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(3)
	r.Gauge("g", func() int64 { return 7 })
	r.Histogram("h", func() HistSnapshot {
		return HistSnapshot{Bounds: []float64{10}, Counts: []int64{2}, Count: 2, Sum: 11}
	})
	r.Histogram("g", func() HistSnapshot { return HistSnapshot{} }) // name clash with gauge
	names := r.Names()
	want := []string{"g", "h", "x"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", names, want)
		}
	}
	hs := r.SnapshotHistograms()
	if hs["h"].Count != 2 || hs["h"].Sum != 11 {
		t.Errorf("SnapshotHistograms[h] = %+v", hs["h"])
	}
}
