package telemetry

import (
	"encoding/json"
	"net/http"
)

// Congestion status plane: the weather-map snapshot a congestion sampler
// (wired by the runner) publishes at deterministic virtual-time windows.
// Like Status, everything here is plain data — percentiles and rates are
// computed by the publisher at quiescent points, handlers only copy and
// serialize.

// CongClassStatus is one link class's cumulative aggregate (local, global,
// terminal, injection).
type CongClassStatus struct {
	Class string `json:"class"`
	Links int    `json:"links"`
	// Utilization is mean busy fraction across the class's links since the
	// run started.
	Utilization float64 `json:"utilization"`
	TxBytes     int64   `json:"tx_bytes"`
	// AvgWaitNs is mean output-buffer wait per dequeued packet.
	AvgWaitNs float64 `json:"avg_wait_ns"`
	// AvgQueueBytes is the time-averaged queue occupancy per link.
	AvgQueueBytes float64 `json:"avg_queue_bytes"`
	// StallNs sums credit-stall time across the class's links.
	StallNs int64 `json:"stall_ns"`
	// QueuedBytes is instantaneous occupancy at sample time.
	QueuedBytes int64 `json:"queued_bytes"`
}

// CongWindowStatus is one completed sampling window of the weather map.
type CongWindowStatus struct {
	EndNs int64 `json:"end_ns"`
	// Util is mean utilization over the window per link class, indexed like
	// the Classes list of the parent status.
	Util []float64 `json:"util"`
	// MaxLinkUtil is the single hottest link's utilization this window;
	// MaxLink names it ("r12.p3" or "nic7").
	MaxLinkUtil float64 `json:"max_link_util"`
	MaxLink     string  `json:"max_link"`
	// Drops and StallNs are this window's deltas.
	Drops   int64 `json:"drops"`
	StallNs int64 `json:"stall_ns"`
}

// FlowClassStatus is one flow size class's completion-time summary.
type FlowClassStatus struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
	Bytes int64  `json:"bytes"`
	// FCT percentiles in nanoseconds.
	FCTP50Ns float64 `json:"fct_p50_ns"`
	FCTP99Ns float64 `json:"fct_p99_ns"`
	// Slowdown percentiles (completion time over ideal line-rate time,
	// 1.0 = uncontended).
	SlowdownP50 float64 `json:"slowdown_p50"`
	SlowdownP99 float64 `json:"slowdown_p99"`
}

// AttributionStatus splits mean delivered-packet latency into where the
// time went.
type AttributionStatus struct {
	Pkts        int64   `json:"pkts"`
	MeanTotalNs float64 `json:"mean_total_ns"`
	MeanQueueNs float64 `json:"mean_queue_ns"`
	MeanSerNs   float64 `json:"mean_ser_ns"`
	// MeanAckNs is the ACK-class serialization burden per delivered packet
	// (the predictive/notification overhead the fabric carries).
	MeanAckNs float64 `json:"mean_ack_overhead_ns"`
	// MeanPropNs is the remainder: propagation and cut-through.
	MeanPropNs float64 `json:"mean_propagation_ns"`
	// Detour population: packets that travelled waypointed (alternative or
	// fault-reroute) paths, and their mean end-to-end latency.
	DetourPkts   int64   `json:"detour_pkts"`
	DetourMeanNs float64 `json:"detour_mean_ns"`
}

// CongestionStatus is the full /congestion snapshot.
type CongestionStatus struct {
	Seq      uint64 `json:"seq"`
	AtNs     int64  `json:"at_ns"`
	WindowNs int64  `json:"window_ns"`
	// Windows counts completed sampling windows so far.
	Windows int               `json:"windows"`
	Classes []CongClassStatus `json:"classes"`
	// Per-VC busy/stall time summed across all links.
	VCBusyNs  []int64 `json:"vc_busy_ns"`
	VCStallNs []int64 `json:"vc_stall_ns"`
	AckBusyNs int64   `json:"ack_busy_ns"`
	// FCT carries per-flow-class completion summaries (empty until the
	// first message completes).
	FCT         []FlowClassStatus  `json:"fct,omitempty"`
	Attribution *AttributionStatus `json:"attribution,omitempty"`
	// Recent holds the last few completed windows, oldest first.
	Recent []CongWindowStatus `json:"recent_windows,omitempty"`
	// Flight recorder state: events captured in the rings and anomaly
	// dumps triggered so far.
	FlightEvents int64 `json:"flight_events"`
	FlightDumps  int   `json:"flight_dumps"`
}

// PublishCongestion stores c as the latest congestion snapshot, stamping
// its Seq.
func (b *Board) PublishCongestion(c CongestionStatus) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.congSeq++
	c.Seq = b.congSeq
	b.cong = c
	b.haveCong = true
	b.mu.Unlock()
}

// Congestion returns the most recent congestion snapshot and whether one
// was ever published.
func (b *Board) Congestion() (CongestionStatus, bool) {
	if b == nil {
		return CongestionStatus{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.cong
	// Copy slices: the publisher may reuse backing arrays next tick.
	c.Classes = append([]CongClassStatus(nil), c.Classes...)
	c.VCBusyNs = append([]int64(nil), c.VCBusyNs...)
	c.VCStallNs = append([]int64(nil), c.VCStallNs...)
	c.FCT = append([]FlowClassStatus(nil), c.FCT...)
	if c.Attribution != nil {
		a := *c.Attribution
		c.Attribution = &a
	}
	recent := make([]CongWindowStatus, len(c.Recent))
	for i, w := range c.Recent {
		w.Util = append([]float64(nil), w.Util...)
		recent[i] = w
	}
	c.Recent = recent
	return c, b.haveCong
}

// handleCongestion serves the latest congestion snapshot as JSON.
func (s *StatusServer) handleCongestion(w http.ResponseWriter, _ *http.Request) {
	c, ok := s.Board.Congestion()
	if !ok {
		http.Error(w, "no congestion snapshot published yet (run with congestion sampling on)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(c)
}
