package core

import (
	"testing"
	"testing/quick"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

// Property: a controller fed arbitrary ACK sequences never panics, never
// exceeds MaxPaths, always keeps the direct path at index 0 with unique
// path IDs, and keeps L(MP) positive.
func TestControllerInvariantsUnderRandomAcks(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	f := func(seed uint64, script []uint32) bool {
		eng := sim.NewEngine()
		cfg := PRDRBConfig()
		cfg.OpenInterval = 0
		cfg.Watchdog = 50 * sim.Microsecond
		cfg.TrendHorizon = 100 * sim.Microsecond
		ctl := New(0, topo, eng, cfg, sim.NewRNG(seed))
		rng := sim.NewRNG(seed ^ 0xfeed)

		for _, op := range script {
			dst := topology.NodeID(1 + op%63)
			switch op % 5 {
			case 0, 1: // high-latency ACK with contending flows
				ctl.HandleAck(eng, &network.Packet{
					Type: network.AckPacket, Src: dst, Dst: 0,
					MSPIndex:    int(op % 7),
					PathLatency: sim.Time(op%200) * sim.Microsecond,
					Contending: []network.FlowKey{
						{Src: topology.NodeID(op % 64), Dst: dst},
						{Src: topology.NodeID((op * 7) % 64), Dst: dst},
					},
				})
			case 2: // low-latency ACK
				ctl.HandleAck(eng, &network.Packet{
					Type: network.AckPacket, Src: dst, Dst: 0,
					MSPIndex: 0, PathLatency: sim.Time(op % 500),
				})
			case 3: // router-based predictive ACK
				ctl.HandleAck(eng, &network.Packet{
					Type: network.AckPacket, Src: dst, Dst: 0,
					MSPIndex: -1, Predictive: true,
					PathLatency: sim.Time(op%100) * sim.Microsecond,
					Contending:  []network.FlowKey{{Src: 5, Dst: dst}},
				})
			case 4: // injection
				pkt := &network.Packet{Type: network.DataPacket, Src: 0, Dst: dst}
				ctl.PrepareInjection(eng, pkt)
				if len(pkt.Waypoints) > 2 {
					return false
				}
			}
			// Advance time pseudo-randomly (also fires watchdogs).
			eng.Schedule(eng.Now()+sim.Time(rng.Intn(30))*sim.Microsecond, func(*sim.Engine) {})
			eng.Run(eng.Now() + 31*sim.Microsecond)

			mp := ctl.mps[dst]
			if mp == nil {
				continue
			}
			if len(mp.paths) < 1 || len(mp.paths) > cfg.MaxPaths {
				return false
			}
			if len(mp.paths[0].path) != 0 {
				return false // direct path must stay at index 0
			}
			seen := map[int]bool{}
			for i := range mp.paths {
				if seen[mp.paths[i].id] {
					return false
				}
				seen[mp.paths[i].id] = true
			}
			if mp.latency(float64(cfg.LatencyFloor)) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: solution DB lookups never return entries below the similarity
// bound, and Save never grows a destination's list beyond MaxPerDst.
func TestSolutionDBInvariants(t *testing.T) {
	f := func(seed uint64, ops []uint16) bool {
		db := NewSolutionDB()
		db.MaxPerDst = 8
		rng := sim.NewRNG(seed)
		for _, op := range ops {
			dst := int(op % 5)
			var flows []network.FlowKey
			for i := 0; i < 1+int(op%6); i++ {
				flows = append(flows, network.FlowKey{
					Src: topology.NodeID(rng.Intn(16)), Dst: topology.NodeID(dst),
				})
			}
			sig := NewSignature(flows, 8)
			if op%3 == 0 {
				db.Save(dst, sig, []pathState{{id: 0}}, 0.8, sim.Time(op))
			} else if got := db.Lookup(dst, sig, 0.8); got != nil {
				if Similarity(sig, got.Sig) < 0.8 {
					return false
				}
			}
			if len(db.perDst[dst]) > db.MaxPerDst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
