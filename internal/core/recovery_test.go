package core_test

import (
	"testing"

	"prdrb/internal/core"
	"prdrb/internal/metrics"
	"prdrb/internal/network"
	"prdrb/internal/routing"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

// TestControllerRecoversFromLinkFailure is the end-to-end fault story: a
// PR-DRB source streaming across a mesh loses its direct path to a hard
// link failure mid-run. The loss notification must register as a HIGH-zone
// event (PathFailures), stale saved solutions must go (none here, but the
// path set is pruned), the metapath must reselect onto healthy MSPs so
// delivery resumes without repair, and the recovery latency must land in
// the collector's histogram.
func TestControllerRecoversFromLinkFailure(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	eng := sim.NewEngine()
	col := metrics.NewCollector(topo.NumTerminals(), topo.NumRouters(), 0)
	net, err := network.New(eng, topo, network.DefaultConfig(), routing.Deterministic{}, col)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.PRDRBConfig()
	cfg.OpenInterval = 0 // let the FSM open alternatives immediately
	ctls := core.Install(net, cfg, 11)

	const (
		period = 2 * sim.Microsecond
		failAt = 100 * sim.Microsecond
		endAt  = 400 * sim.Microsecond
	)
	delivered, deliveredAfterFail := 0, 0
	net.NICs[3].OnMessage = func(e *sim.Engine, _ topology.NodeID, _ uint64, _ int, _ uint8, _ uint32) {
		delivered++
		if e.Now() > failAt {
			deliveredAfterFail++
		}
	}
	sent := 0
	var tick func(e *sim.Engine)
	tick = func(e *sim.Engine) {
		if e.Now() >= endAt {
			return
		}
		net.NICs[0].Send(e, 3, 512, network.MPISend, uint32(sent))
		sent++
		e.After(period, tick)
	}
	eng.Schedule(0, tick)
	// The XY route 0->3 runs along row 0; cut its middle link, no repair.
	eng.Schedule(failAt, func(e *sim.Engine) {
		if err := net.FailLink(e, 1, 0); err != nil {
			t.Errorf("FailLink: %v", err)
		}
	})
	eng.RunAll()

	stats := core.AggregateStats(ctls)
	if stats.PathFailures == 0 {
		t.Fatalf("no loss notification reached the source controller")
	}
	if deliveredAfterFail == 0 {
		t.Fatalf("delivery never resumed after the failure (sent %d, delivered %d)", sent, delivered)
	}
	if stats.Recoveries == 0 {
		t.Fatalf("recovery never recorded despite post-failure deliveries")
	}
	if col.Recovery.Count() == 0 {
		t.Fatalf("recovery histogram empty")
	}
	// The metapath toward 3 must have settled on a feasible detour. (The
	// direct path is structural and stays open even while dead; selection
	// just never picks it.)
	paths := ctls[0].Paths(3)
	usable := 0
	for _, p := range paths {
		if net.PathUsable(0, 3, p) {
			usable++
		}
	}
	if usable == 0 {
		t.Fatalf("no usable path open after recovery: %v", paths)
	}
	// Sanity on the measurement itself: recovery latency is positive and
	// bounded by the run.
	if q := col.Recovery.Quantile(0.5); q <= 0 || q > float64(endAt) {
		t.Fatalf("recovery p50 = %v ns, outside (0, %v]", q, endAt)
	}
}
