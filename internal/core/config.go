// Package core implements the paper's contribution: Distributed Routing
// Balancing (DRB) and its predictive extension PR-DRB (thesis ch. 3), plus
// the fast-response FR-DRB variant and the predictive layer on top of it
// (§4.8.4).
//
// The controller lives at each source node (it implements
// network.SourceController). It maintains a metapath — a set of multistep
// paths (MSPs) — per destination, selects a path for every injected packet
// from the Eq 3.6 probability density, digests returning ACKs into per-path
// latency estimates and the Eq 3.4 metapath latency, and walks the
// L/M/H-zone FSM of Figs 3.9/3.12: opening alternative paths under
// congestion, closing them when traffic relaxes, and — in the predictive
// variants — saving the winning path set keyed by the contending-flow
// pattern so it can be re-applied at once when the pattern repeats
// (§3.2.6-3.2.8).
package core

import (
	"fmt"

	"prdrb/internal/sim"
)

// Config are the DRB/PR-DRB policy knobs (§3.2.4 thresholds, §3.2.8
// similarity, §4.8.4 watchdog).
type Config struct {
	// ThresholdLow / ThresholdHigh bound the working zone of the metapath
	// latency L(MP) (Eq 3.4, Fig 3.9).
	ThresholdLow  sim.Time
	ThresholdHigh sim.Time
	// MaxPaths caps the metapath size (the paper's fat-tree experiments use
	// a maximum of 4 alternative paths, §4.6.3).
	MaxPaths int
	// Alpha is the EWMA weight for per-path latency updates from ACKs.
	Alpha float64
	// LatencyFloor avoids division blow-ups for uncongested paths in
	// Eqs 3.4/3.6.
	LatencyFloor sim.Time
	// HopPenalty charges extra path length when weighting paths, so
	// "shortest paths are selected" (§3.2.6). Expressed per extra hop
	// relative to the direct path.
	HopPenalty sim.Time
	// OpenInterval is the minimum spacing between consecutive path openings
	// for one destination: DRB opens "one path at a time and evaluates the
	// effect" (§4.5.1).
	OpenInterval sim.Time
	// IdleReset relaxes a destination's metapath back to the direct path
	// after this much time without injections — the burst-gap behaviour of
	// Fig 3.1, where latency "decreases to a minimum" between communication
	// phases and the path-closing procedures run. The predictive variants
	// recover instantly from the solution database; plain DRB re-adapts
	// from scratch, which is exactly the contrast the paper measures.
	// 0 disables relaxation.
	IdleReset sim.Time

	// Predictive enables the PR- layer: the solution database, save on H->M
	// and reuse on M->H (§3.2.6).
	Predictive bool
	// Similarity is the approximate-matching threshold for contending-flow
	// patterns; the paper uses 80% (§3.2.8).
	Similarity float64
	// EvidenceWindow bounds how long a reported contending flow stays part
	// of the current pattern.
	EvidenceWindow sim.Time
	// MaxSignature caps the flows kept in a pattern signature.
	MaxSignature int

	// Watchdog, when positive, enables the FR-DRB fast-response timer: a
	// destination with outstanding packets and no ACK within this interval
	// is treated as congested without waiting for notification (§4.8.4).
	Watchdog sim.Time

	// TrendHorizon, when positive, enables latency-trend prediction (the
	// §5.2 extension): if the recent L(MP) history projects a
	// ThresholdHigh crossing within this horizon, the M->H actions run
	// early. 0 disables the predictor.
	TrendHorizon sim.Time
}

// Validate reports the first inconsistency.
func (c *Config) Validate() error {
	switch {
	case c.ThresholdLow <= 0 || c.ThresholdHigh <= c.ThresholdLow:
		return fmt.Errorf("core: need 0 < ThresholdLow < ThresholdHigh, got %v/%v", c.ThresholdLow, c.ThresholdHigh)
	case c.MaxPaths < 1:
		return fmt.Errorf("core: MaxPaths must be >= 1")
	case c.Alpha <= 0 || c.Alpha > 1:
		return fmt.Errorf("core: Alpha %v outside (0,1]", c.Alpha)
	case c.LatencyFloor <= 0:
		return fmt.Errorf("core: LatencyFloor must be positive")
	case c.Predictive && (c.Similarity <= 0 || c.Similarity > 1):
		return fmt.Errorf("core: Similarity %v outside (0,1]", c.Similarity)
	case c.Predictive && c.MaxSignature <= 0:
		return fmt.Errorf("core: MaxSignature must be positive")
	case c.Watchdog < 0:
		return fmt.Errorf("core: negative watchdog")
	case c.IdleReset < 0:
		return fmt.Errorf("core: negative IdleReset")
	case c.TrendHorizon < 0:
		return fmt.Errorf("core: negative TrendHorizon")
	}
	return nil
}

// DRBConfig returns the plain DRB baseline configuration (Franco et al.):
// gradual path expansion, no memory of past solutions.
func DRBConfig() Config {
	return Config{
		ThresholdLow:   2 * sim.Microsecond,
		ThresholdHigh:  10 * sim.Microsecond,
		MaxPaths:       4,
		Alpha:          0.3,
		LatencyFloor:   500 * sim.Nanosecond,
		HopPenalty:     2 * sim.Microsecond,
		OpenInterval:   100 * sim.Microsecond,
		IdleReset:      150 * sim.Microsecond,
		Predictive:     false,
		Similarity:     0.8,
		EvidenceWindow: 300 * sim.Microsecond,
		MaxSignature:   16,
	}
}

// PRDRBConfig returns the paper's contribution: DRB plus the predictive
// solution database.
func PRDRBConfig() Config {
	c := DRBConfig()
	c.Predictive = true
	return c
}

// FRDRBConfig returns the Fast-Response DRB variant: a watchdog timer opens
// paths without waiting for ACK notification (§4.8.4).
func FRDRBConfig() Config {
	c := DRBConfig()
	c.Watchdog = 60 * sim.Microsecond
	return c
}

// PRFRDRBConfig layers the predictive module on FR-DRB, demonstrating the
// policy's modularity over the DRB family (§4.8.4).
func PRFRDRBConfig() Config {
	c := FRDRBConfig()
	c.Predictive = true
	return c
}

// TuneForTraces adapts a configuration to fine-grained application-trace
// traffic (§4.8): thresholds scale down to the trace latency regime
// (halo exchanges sit at a few µs, not the tens of µs of saturated
// synthetic bursts), the open interval shortens to react within a
// communication phase, the metapath deepens, and idle relaxation is
// disabled — a destination's inter-phase injection gap is far longer than
// any sensible relax window, so relaxing would just discard every adapted
// path between phases.
func (c Config) TuneForTraces() Config {
	c.ThresholdHigh = 2500 * sim.Nanosecond
	c.ThresholdLow = 600 * sim.Nanosecond
	c.OpenInterval = 10 * sim.Microsecond
	c.IdleReset = 0
	c.MaxPaths = 6
	c.LatencyFloor = 200 * sim.Nanosecond
	return c
}

// ConfigByName maps the experiment policy names to configurations:
// "drb", "pr-drb", "fr-drb", "pr-fr-drb". ok is false for unknown names.
func ConfigByName(name string) (Config, bool) {
	switch name {
	case "drb":
		return DRBConfig(), true
	case "pr-drb":
		return PRDRBConfig(), true
	case "fr-drb":
		return FRDRBConfig(), true
	case "pr-fr-drb":
		return PRFRDRBConfig(), true
	}
	return Config{}, false
}
