package core

import (
	"encoding/json"
	"fmt"
	"io"

	"prdrb/internal/network"
	"prdrb/internal/topology"
)

// Solution-database export/import — the "static variation" of thesis §5.2:
// "PR-DRB routers could have offline meta-information about the
// communication patterns... This information would help the routing module
// to decide faster, notify sooner and apply best solutions smarter."
//
// A trained controller fleet serializes its saved solutions; a later run
// of the same application preloads them, so the predictive module reacts
// on the *first* occurrence of each pattern instead of learning during it.

// exportPath is the JSON form of one multistep path.
type exportPath struct {
	Waypoints []int   `json:"waypoints"`
	LatencyNs float64 `json:"latency_ns"`
	ExtraHops int     `json:"extra_hops"`
}

// exportSolution is one saved pattern->paths entry.
type exportSolution struct {
	Dst   int          `json:"dst"`
	Flows [][2]int     `json:"flows"` // [src, dst] pairs
	Paths []exportPath `json:"paths"`
	Hits  int64        `json:"hits"`
}

// exportNode is one source node's knowledge.
type exportNode struct {
	Node      int              `json:"node"`
	Solutions []exportSolution `json:"solutions"`
}

// Knowledge is a serializable snapshot of a controller fleet's solution
// databases.
type Knowledge struct {
	Nodes []exportNode `json:"nodes"`
}

// ExportKnowledge snapshots every predictive controller's database.
func ExportKnowledge(ctls []*Controller) *Knowledge {
	k := &Knowledge{}
	for _, c := range ctls {
		if c == nil || c.db == nil {
			continue
		}
		en := exportNode{Node: int(c.Node)}
		for dst, sols := range c.db.perDst {
			for _, s := range sols {
				es := exportSolution{Dst: dst, Hits: s.Hits}
				for _, f := range s.Sig {
					es.Flows = append(es.Flows, [2]int{int(f.Src), int(f.Dst)})
				}
				for _, p := range s.paths {
					wp := make([]int, len(p.path))
					for i, r := range p.path {
						wp[i] = int(r)
					}
					es.Paths = append(es.Paths, exportPath{
						Waypoints: wp, LatencyNs: p.latNs, ExtraHops: p.extraHops,
					})
				}
				en.Solutions = append(en.Solutions, es)
			}
		}
		if len(en.Solutions) > 0 {
			k.Nodes = append(k.Nodes, en)
		}
	}
	return k
}

// ImportKnowledge preloads databases into a fresh controller fleet. The
// fleet must cover the node ids in the snapshot and be predictive.
func ImportKnowledge(ctls []*Controller, k *Knowledge) error {
	byNode := make(map[int]*Controller, len(ctls))
	for _, c := range ctls {
		if c != nil {
			byNode[int(c.Node)] = c
		}
	}
	for _, en := range k.Nodes {
		c := byNode[en.Node]
		if c == nil {
			return fmt.Errorf("core: knowledge references unknown node %d", en.Node)
		}
		if c.db == nil {
			return fmt.Errorf("core: node %d controller is not predictive", en.Node)
		}
		for _, es := range en.Solutions {
			var flows []network.FlowKey
			for _, f := range es.Flows {
				flows = append(flows, network.FlowKey{Src: topology.NodeID(f[0]), Dst: topology.NodeID(f[1])})
			}
			sig := NewSignature(flows, c.Cfg.MaxSignature)
			paths := make([]pathState, 0, len(es.Paths))
			for i, p := range es.Paths {
				wp := make(topology.Path, len(p.Waypoints))
				for j, r := range p.Waypoints {
					wp[j] = topology.RouterID(r)
				}
				paths = append(paths, pathState{
					id: i, path: wp, latNs: p.LatencyNs, extraHops: p.ExtraHops,
				})
			}
			c.db.Save(es.Dst, sig, paths, c.Cfg.Similarity, 0)
		}
	}
	return nil
}

// WriteTo serializes the knowledge as indented JSON.
func (k *Knowledge) WriteTo(w io.Writer) (int64, error) {
	buf, err := json.MarshalIndent(k, "", "  ")
	if err != nil {
		return 0, err
	}
	buf = append(buf, '\n')
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadKnowledge parses a snapshot written by WriteTo.
func ReadKnowledge(r io.Reader) (*Knowledge, error) {
	var k Knowledge
	dec := json.NewDecoder(r)
	if err := dec.Decode(&k); err != nil {
		return nil, fmt.Errorf("core: bad knowledge snapshot: %w", err)
	}
	return &k, nil
}

// Size returns the number of solutions in the snapshot.
func (k *Knowledge) Size() int {
	n := 0
	for _, en := range k.Nodes {
		n += len(en.Solutions)
	}
	return n
}
