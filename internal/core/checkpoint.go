package core

import (
	"sort"

	"prdrb/internal/ckpt"
	"prdrb/internal/network"
	"prdrb/internal/topology"
)

// Checkpoint capture for the PR-DRB control plane. Controllers encode in
// node order; inside a controller the metapaths encode sorted by
// destination, the evidence maps sorted by flow key, and the solution
// database sorted by destination — every map walk pinned so identical
// controller state always produces identical bytes.

func encPath(e *ckpt.Enc, p topology.Path) {
	e.Int(len(p))
	for _, r := range p {
		e.I64(int64(r))
	}
}

func encPathState(e *ckpt.Enc, ps *pathState) {
	e.Int(ps.id)
	encPath(e, ps.path)
	e.F64(ps.latNs)
	e.Int(ps.extraHops)
	e.I64(ps.acks)
}

func encSignature(e *ckpt.Enc, sig Signature) {
	e.Int(len(sig))
	for _, f := range sig {
		e.I64(int64(f.Src))
		e.I64(int64(f.Dst))
	}
}

func (mp *metapath) encodeState(e *ckpt.Enc) {
	e.I64(int64(mp.dst))
	e.U8(uint8(mp.zone))
	e.Int(mp.nextPathID)
	e.Int(len(mp.paths))
	for i := range mp.paths {
		encPathState(e, &mp.paths[i])
	}
	e.Bool(mp.poolInit)
	e.Int(len(mp.pool))
	for _, p := range mp.pool {
		encPath(e, p)
	}
	e.I64(int64(mp.lastOpen))
	e.I64(int64(mp.lastInject))
	e.Int(mp.outstanding)
	e.I64(int64(mp.failedAt))
	if mp.watchdog != nil {
		if at, armed := mp.watchdog.Deadline(); armed {
			e.Bool(true)
			e.I64(int64(at))
		} else {
			e.Bool(false)
		}
	} else {
		e.Bool(false)
	}
	flows := make([]network.FlowKey, 0, len(mp.flowSeen))
	for f := range mp.flowSeen {
		flows = append(flows, f)
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	e.Int(len(flows))
	for _, f := range flows {
		e.I64(int64(f.Src))
		e.I64(int64(f.Dst))
		e.I64(int64(mp.flowSeen[f]))
	}
	// Trend ring, oldest-first up to capacity.
	e.Int(len(mp.trend.samples))
	e.Int(mp.trend.next)
	e.Bool(mp.trend.full)
	for _, s := range mp.trend.samples {
		e.I64(int64(s.at))
		e.F64(s.lat)
	}
}

func (db *SolutionDB) encodeState(e *ckpt.Enc) {
	// Non-predictive controllers (plain DRB) carry no database.
	if db == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.Int(db.MaxPerDst)
	dsts := make([]int, 0, len(db.perDst))
	for d := range db.perDst {
		dsts = append(dsts, d)
	}
	sort.Ints(dsts)
	e.Int(len(dsts))
	for _, d := range dsts {
		sols := db.perDst[d]
		e.Int(d)
		e.Int(len(sols))
		for _, s := range sols {
			encSignature(e, s.Sig)
			e.Int(len(s.paths))
			for i := range s.paths {
				encPathState(e, &s.paths[i])
			}
			e.I64(s.Hits)
			e.I64(s.Updates)
			e.I64(int64(s.SavedAt))
		}
	}
}

// EncodeState appends one controller's full state: RNG stream, decision
// statistics, every metapath and the solution database.
func (c *Controller) EncodeState(e *ckpt.Enc) {
	e.I64(int64(c.Node))
	st := c.rng.State()
	for _, w := range st {
		e.U64(w)
	}
	s := &c.Stats
	e.I64(s.PathsOpened)
	e.I64(s.PathsClosed)
	e.I64(s.PatternsSaved)
	e.I64(s.PatternsReused)
	e.I64(s.ReuseApplications)
	e.I64(s.WatchdogFirings)
	e.I64(s.AcksSeen)
	e.I64(s.PredictiveAcks)
	e.I64(s.TrendFirings)
	e.I64(s.PathFailures)
	e.I64(s.SolutionsInvalidated)
	e.I64(s.Recoveries)
	dsts := make([]topology.NodeID, 0, len(c.mps))
	for d := range c.mps {
		dsts = append(dsts, d)
	}
	sort.Slice(dsts, func(i, j int) bool { return dsts[i] < dsts[j] })
	e.Int(len(dsts))
	for _, d := range dsts {
		c.mps[d].encodeState(e)
	}
	c.db.encodeState(e)
}

// EncodeControllers appends every controller in node order.
func EncodeControllers(e *ckpt.Enc, ctls []*Controller) {
	sorted := make([]*Controller, len(ctls))
	copy(sorted, ctls)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	e.Int(len(sorted))
	for _, c := range sorted {
		c.EncodeState(e)
	}
}
