package core

import (
	"bytes"
	"testing"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

func TestTrendSlope(t *testing.T) {
	var tt trendTracker
	// Fewer than 4 samples: no slope.
	tt.add(0, 100)
	tt.add(10, 200)
	if _, _, ok := tt.slope(); ok {
		t.Fatal("slope with 2 samples")
	}
	tt.add(20, 300)
	tt.add(30, 400)
	slope, latest, ok := tt.slope()
	if !ok {
		t.Fatal("no slope with 4 samples")
	}
	if slope < 9.9 || slope > 10.1 {
		t.Fatalf("slope = %v, want 10", slope)
	}
	if latest != 400 {
		t.Fatalf("latest = %v", latest)
	}
}

func TestTrendRingWraps(t *testing.T) {
	var tt trendTracker
	for i := 0; i < 3*trendCapacity; i++ {
		tt.add(sim.Time(i*10), float64(i))
	}
	if tt.count() != trendCapacity {
		t.Fatalf("ring count = %d", tt.count())
	}
	slope, _, ok := tt.slope()
	if !ok || slope < 0.09 || slope > 0.11 {
		t.Fatalf("wrapped slope = %v, ok=%v", slope, ok)
	}
}

func TestTrendPredictsCongestion(t *testing.T) {
	var tt trendTracker
	// Rising 10 ns per ns: from 400, threshold 1000 reached in 60 ns.
	for i := 0; i <= 3; i++ {
		tt.add(sim.Time(i*10), float64(100+i*100))
	}
	if !tt.predictsCongestion(1000, 100) {
		t.Fatal("imminent crossing not predicted")
	}
	if tt.predictsCongestion(1000, 10) {
		t.Fatal("predicted crossing beyond the horizon")
	}
	// Flat history predicts nothing.
	var flat trendTracker
	for i := 0; i < 6; i++ {
		flat.add(sim.Time(i*10), 500)
	}
	if flat.predictsCongestion(1000, 1<<40) {
		t.Fatal("flat trend predicted congestion")
	}
	// Already above threshold: the zone FSM handles it, not the predictor.
	var above trendTracker
	for i := 0; i <= 4; i++ {
		above.add(sim.Time(i*10), float64(2000+i*100))
	}
	if above.predictsCongestion(1000, 100) {
		t.Fatal("predictor fired above threshold")
	}
}

// With the trend predictor on, a steadily rising latency must open paths
// BEFORE L(MP) crosses ThresholdHigh.
func TestTrendTriggersEarlyOpening(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := DRBConfig()
	cfg.OpenInterval = 0
	cfg.TrendHorizon = 200 * sim.Microsecond
	ctl := New(0, topo, eng, cfg, sim.NewRNG(3))

	// Ramp: 2,3,4,5,6 us — all below ThresholdHigh (10us), rising ~1us per
	// ack. EWMA smoothing keeps L(MP) below threshold throughout.
	for i := 0; i < 5; i++ {
		lat := sim.Time(2+i) * sim.Microsecond
		ctl.HandleAck(eng, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
			MSPIndex: 0, PathLatency: lat})
		eng.Schedule(eng.Now()+10*sim.Microsecond, func(*sim.Engine) {})
		eng.RunAll()
	}
	if ctl.Stats.TrendFirings == 0 {
		t.Fatal("trend predictor never fired on a rising ramp")
	}
	if ctl.PathCount(63) < 2 {
		t.Fatal("early firing did not open paths")
	}
	// Without the predictor the same ramp must NOT open anything.
	cfg2 := DRBConfig()
	cfg2.OpenInterval = 0
	eng2 := sim.NewEngine()
	ctl2 := New(0, topo, eng2, cfg2, sim.NewRNG(3))
	for i := 0; i < 5; i++ {
		lat := sim.Time(2+i) * sim.Microsecond
		ctl2.HandleAck(eng2, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
			MSPIndex: 0, PathLatency: lat})
	}
	if ctl2.PathCount(63) != 1 {
		t.Fatal("reactive controller opened paths below threshold")
	}
}

func TestKnowledgeExportImportRoundTrip(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := PRDRBConfig()
	cfg.OpenInterval = 0
	trained := New(0, topo, eng, cfg, sim.NewRNG(3))
	pattern := []network.FlowKey{{Src: 0, Dst: 63}, {Src: 7, Dst: 63}}
	// Train: force H then save on H->M.
	for i := 0; i < 6; i++ {
		trained.HandleAck(eng, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
			MSPIndex: 0, PathLatency: 100 * sim.Microsecond, Contending: pattern})
		eng.Schedule(eng.Now()+sim.Microsecond, func(*sim.Engine) {})
		eng.RunAll()
	}
	for _, id := range openPathIDs(trained, 63) {
		trained.HandleAck(eng, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
			MSPIndex: id, PathLatency: 5 * sim.Microsecond, Contending: pattern})
	}
	if trained.DB().Size() == 0 {
		t.Fatal("training produced no solutions")
	}

	k := ExportKnowledge([]*Controller{trained})
	if k.Size() != trained.DB().Size() {
		t.Fatalf("export size %d != db size %d", k.Size(), trained.DB().Size())
	}
	var buf bytes.Buffer
	if _, err := k.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	k2, err := ReadKnowledge(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if k2.Size() != k.Size() {
		t.Fatal("JSON round trip lost solutions")
	}

	// Import into a fresh controller: the first congestion with the known
	// pattern must reuse immediately (no gradual opening).
	eng3 := sim.NewEngine()
	fresh := New(0, topo, eng3, cfg, sim.NewRNG(4))
	if err := ImportKnowledge([]*Controller{fresh}, k2); err != nil {
		t.Fatal(err)
	}
	fresh.HandleAck(eng3, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
		MSPIndex: 0, PathLatency: 100 * sim.Microsecond, Contending: pattern})
	if fresh.Stats.ReuseApplications != 1 {
		t.Fatalf("preloaded controller did not reuse: %+v", fresh.Stats)
	}
	if fresh.PathCount(63) < 2 {
		t.Fatal("preloaded solution did not restore paths")
	}
}

func TestImportKnowledgeErrors(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	eng := sim.NewEngine()
	k := &Knowledge{Nodes: []exportNode{{Node: 99, Solutions: []exportSolution{{Dst: 1}}}}}
	c := New(0, topo, eng, PRDRBConfig(), sim.NewRNG(1))
	if err := ImportKnowledge([]*Controller{c}, k); err == nil {
		t.Fatal("unknown node accepted")
	}
	plain := New(0, topo, eng, DRBConfig(), sim.NewRNG(1))
	k2 := &Knowledge{Nodes: []exportNode{{Node: 0, Solutions: []exportSolution{{Dst: 1}}}}}
	if err := ImportKnowledge([]*Controller{plain}, k2); err == nil {
		t.Fatal("non-predictive controller accepted knowledge")
	}
	if _, err := ReadKnowledge(bytes.NewBufferString("{bad json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}
