package core

import "prdrb/internal/sim"

// Latency-trend prediction — the first "further work" line of thesis §5.2:
// "With enough historic latency values and traffic information, PR-DRB
// could predict future congestion before it actually arises. This trend
// analysis could greatly improve system performance."
//
// The predictor keeps a short ring of (time, L(MP)) samples per metapath
// and fits a least-squares line. When the line projects L(MP) crossing
// ThresholdHigh within TrendHorizon — while the zone is still M — the
// controller runs its M->H actions early (solution reuse or path opening),
// cutting the detection lag that both DRB and reactive PR-DRB share.

// trendSample is one historic metapath-latency observation.
type trendSample struct {
	at  sim.Time
	lat float64 // ns
}

// trendTracker is the per-metapath history ring.
type trendTracker struct {
	samples []trendSample
	next    int
	full    bool
}

const trendCapacity = 16

func (tt *trendTracker) add(at sim.Time, lat float64) {
	if cap(tt.samples) == 0 {
		tt.samples = make([]trendSample, trendCapacity)
	}
	tt.samples[tt.next] = trendSample{at: at, lat: lat}
	tt.next = (tt.next + 1) % trendCapacity
	if tt.next == 0 {
		tt.full = true
	}
}

func (tt *trendTracker) count() int {
	if tt.full {
		return trendCapacity
	}
	return tt.next
}

// slope returns the least-squares dL/dt in ns-per-ns and the latest
// latency; ok is false with fewer than 4 samples or a degenerate span.
func (tt *trendTracker) slope() (slope, latest float64, ok bool) {
	n := tt.count()
	if n < 4 {
		return 0, 0, false
	}
	// Center times to keep the arithmetic well-conditioned.
	var sumT, sumL float64
	var newest trendSample
	for i := 0; i < n; i++ {
		s := tt.samples[i]
		sumT += float64(s.at)
		sumL += s.lat
		if s.at >= newest.at {
			newest = s
		}
	}
	meanT, meanL := sumT/float64(n), sumL/float64(n)
	var sxx, sxy float64
	for i := 0; i < n; i++ {
		s := tt.samples[i]
		dt := float64(s.at) - meanT
		sxx += dt * dt
		sxy += dt * (s.lat - meanL)
	}
	if sxx <= 0 {
		return 0, 0, false
	}
	return sxy / sxx, newest.lat, true
}

// predictsCongestion reports whether the trend projects latency crossing
// high within horizon ns.
func (tt *trendTracker) predictsCongestion(high float64, horizon sim.Time) bool {
	slope, latest, ok := tt.slope()
	if !ok || slope <= 0 || latest >= high {
		return false
	}
	// Time (ns) until the projected line reaches the threshold.
	eta := (high - latest) / slope
	return eta <= float64(horizon)
}

// observeTrend feeds the predictor after each ACK and fires the early
// reaction when enabled.
func (c *Controller) observeTrend(e *sim.Engine, mp *metapath) {
	if c.Cfg.TrendHorizon <= 0 {
		return
	}
	lat := mp.latency(float64(c.Cfg.LatencyFloor))
	mp.trend.add(e.Now(), lat)
	if mp.zone == ZoneHigh {
		return // already reacting
	}
	if mp.trend.predictsCongestion(float64(c.Cfg.ThresholdHigh), c.Cfg.TrendHorizon) {
		c.Stats.TrendFirings++
		c.enterHigh(e, mp)
	}
}
