package core

import (
	"fmt"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

// Zone is the congestion zone of Eq 3.5 / Fig 3.9.
type Zone uint8

// Zones: low latency (paths can close), the normal working zone, and high
// latency (congestion; paths must open).
const (
	ZoneLow Zone = iota
	ZoneMedium
	ZoneHigh
)

func (z Zone) String() string {
	switch z {
	case ZoneLow:
		return "L"
	case ZoneMedium:
		return "M"
	default:
		return "H"
	}
}

// pathState is one multistep path of a metapath with its estimated latency.
type pathState struct {
	id   int           // stable identifier carried in packets as MSPIndex
	path topology.Path // waypoints; empty = the original path
	// latNs is the EWMA of ACK-reported path latency in ns, floored.
	latNs float64
	// extraHops is the length excess over the direct path (Eq 3.2), charged
	// via Config.HopPenalty during selection.
	extraHops int
	acks      int64
}

// metapath is the per-destination path set of §3.2.3 plus the predictive
// evidence the PR- layer collects for it.
type metapath struct {
	dst   topology.NodeID
	paths []pathState // index 0 is always the direct path
	zone  Zone

	nextPathID int
	// pool holds the topology's alternative-path candidates not yet opened.
	pool     []topology.Path
	poolInit bool

	lastOpen   sim.Time
	lastInject sim.Time

	// flowSeen timestamps the contending flows reported for this
	// destination (the pattern evidence, §3.2.7).
	flowSeen map[network.FlowKey]sim.Time

	// outstanding data packets without ACK, for the FR-DRB watchdog.
	outstanding int
	watchdog    *sim.Timer

	// failedAt is the time of the first unacknowledged loss notification,
	// zero once the next successful ACK closes the recovery window.
	failedAt sim.Time

	// trend holds the L(MP) history for the §5.2 trend predictor.
	trend trendTracker
}

func newMetapath(dst topology.NodeID, floor sim.Time) *metapath {
	return &metapath{
		dst: dst,
		paths: []pathState{{
			id:    0,
			path:  nil,
			latNs: float64(floor),
		}},
		nextPathID: 1,
		flowSeen:   make(map[network.FlowKey]sim.Time),
	}
}

// latency returns the metapath latency L(MP) of Eq 3.4 in ns: the inverse
// of the summed inverse path latencies (paths in parallel act as aggregated
// capacity).
func (mp *metapath) latency(floor float64) float64 {
	inv := 0.0
	for i := range mp.paths {
		l := mp.paths[i].latNs
		if l < floor {
			l = floor
		}
		inv += 1 / l
	}
	if inv == 0 {
		return floor
	}
	return 1 / inv
}

// weight is the selection weight of one path: inverse of its latency with
// the length penalty applied (§3.2.6: lower latency and shorter paths are
// preferred).
func (p *pathState) weight(cfg *Config) float64 {
	l := p.latNs + float64(p.extraHops)*float64(cfg.HopPenalty)
	if l < float64(cfg.LatencyFloor) {
		l = float64(cfg.LatencyFloor)
	}
	return 1 / l
}

// selectPath draws a path index from the Eq 3.6 probability density.
// usable, when non-nil, excludes paths that currently cross failed links;
// if every path is excluded the unfiltered draw applies (the packet will
// be lost and the loss notification drives reconfiguration).
func (mp *metapath) selectPath(cfg *Config, rng *sim.RNG, usable func(p *pathState) bool) *pathState {
	if len(mp.paths) == 1 {
		return &mp.paths[0]
	}
	total := 0.0
	feasible := 0
	for i := range mp.paths {
		if usable != nil && !usable(&mp.paths[i]) {
			continue
		}
		feasible++
		total += mp.paths[i].weight(cfg)
	}
	if feasible == 0 {
		usable = nil
		for i := range mp.paths {
			total += mp.paths[i].weight(cfg)
		}
	}
	x := rng.Float64() * total
	last := &mp.paths[0]
	for i := range mp.paths {
		if usable != nil && !usable(&mp.paths[i]) {
			continue
		}
		last = &mp.paths[i]
		x -= mp.paths[i].weight(cfg)
		if x <= 0 {
			return last
		}
	}
	return last
}

// byID finds a path by its stable identifier; nil if it has been closed.
func (mp *metapath) byID(id int) *pathState {
	for i := range mp.paths {
		if mp.paths[i].id == id {
			return &mp.paths[i]
		}
	}
	return nil
}

// observe folds an ACK's path latency into the identified path (EWMA).
func (mp *metapath) observe(cfg *Config, id int, lat sim.Time) {
	p := mp.byID(id)
	if p == nil {
		return
	}
	sample := float64(lat)
	if sample < float64(cfg.LatencyFloor) {
		sample = float64(cfg.LatencyFloor)
	}
	if p.acks == 0 {
		p.latNs = sample
	} else {
		p.latNs = cfg.Alpha*sample + (1-cfg.Alpha)*p.latNs
	}
	p.acks++
}

// snapshot deep-copies the current path set (a candidate "best solution",
// Fig 3.14).
func (mp *metapath) snapshot() []pathState {
	out := make([]pathState, len(mp.paths))
	copy(out, mp.paths)
	for i := range out {
		out[i].path = append(topology.Path(nil), out[i].path...)
	}
	return out
}

// restore replaces the path set with a saved solution, assigning fresh
// stable IDs (old ACKs must not credit restored paths).
func (mp *metapath) restore(saved []pathState) {
	mp.paths = mp.paths[:0]
	for _, p := range saved {
		p.id = 0
		if len(p.path) > 0 {
			p.id = mp.nextPathID
			mp.nextPathID++
		}
		p.acks = 0
		p.path = append(topology.Path(nil), p.path...)
		mp.paths = append(mp.paths, p)
	}
}

func (mp *metapath) String() string {
	return fmt.Sprintf("mp(dst=%d, %d paths, zone=%s)", mp.dst, len(mp.paths), mp.zone)
}
