package core

import (
	"sort"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

// Signature is a normalized (sorted, deduplicated) contending-flow pattern
// — the key of the saved-solutions database (§3.2.8).
type Signature []network.FlowKey

// NewSignature normalizes a flow set into a signature, capped at max flows.
func NewSignature(flows []network.FlowKey, max int) Signature {
	seen := make(map[network.FlowKey]bool, len(flows))
	out := make(Signature, 0, len(flows))
	for _, f := range flows {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	if max > 0 && len(out) > max {
		out = out[:max]
	}
	return out
}

// Similarity returns the Dice coefficient of two signatures:
// 2|A∩B| / (|A|+|B|), in [0,1]. The paper requires >= 0.80 for a pattern to
// count as "already analyzed" (§3.2.8 approximation matching).
func Similarity(a, b Signature) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[network.FlowKey]bool, len(a))
	for _, f := range a {
		set[f] = true
	}
	common := 0
	for _, f := range b {
		if set[f] {
			common++
		}
	}
	return 2 * float64(common) / float64(len(a)+len(b))
}

// Solution is one saved congestion answer: the pattern that caused it and
// the path set (with latency weights) that controlled it (Fig 3.14).
type Solution struct {
	Sig     Signature
	paths   []pathState
	Hits    int64 // times re-applied
	Updates int64 // times refreshed by a better/later H->M transition
	SavedAt sim.Time
}

// SolutionDB is a source node's memory of analyzed congestion situations,
// scoped per destination (each metapath saves its own solutions).
type SolutionDB struct {
	perDst map[int][]*Solution
	// MaxPerDst bounds memory; oldest entries are evicted.
	MaxPerDst int
}

// NewSolutionDB returns an empty database.
func NewSolutionDB() *SolutionDB {
	return &SolutionDB{perDst: make(map[int][]*Solution), MaxPerDst: 32}
}

// Lookup returns the best-matching saved solution for dst whose signature
// similarity meets minSim, preferring higher similarity then more hits.
func (db *SolutionDB) Lookup(dst int, sig Signature, minSim float64) *Solution {
	var best *Solution
	bestSim := 0.0
	for _, s := range db.perDst[dst] {
		sim := Similarity(sig, s.Sig)
		if sim < minSim {
			continue
		}
		if best == nil || sim > bestSim || (sim == bestSim && s.Hits > best.Hits) {
			best, bestSim = s, sim
		}
	}
	return best
}

// Save stores (or refreshes) the solution for dst under sig. When an
// existing entry matches sig at minSim it is updated in place — the paper's
// "best solution saved may be further updated" (§3.2).
func (db *SolutionDB) Save(dst int, sig Signature, paths []pathState, minSim float64, now sim.Time) *Solution {
	if len(sig) == 0 {
		return nil
	}
	if existing := db.Lookup(dst, sig, minSim); existing != nil {
		existing.paths = paths
		existing.Sig = sig
		existing.Updates++
		return existing
	}
	s := &Solution{Sig: sig, paths: paths, SavedAt: now}
	lst := append(db.perDst[dst], s)
	if len(lst) > db.MaxPerDst {
		lst = lst[1:]
	}
	db.perDst[dst] = lst
	return s
}

// Invalidate removes every solution for dst whose path set contains a path
// rejected by usable (a path crossing a failed link). A stale solution is
// worse than none: re-applying it would aim traffic straight at the dead
// link. It returns the number of solutions removed.
func (db *SolutionDB) Invalidate(dst int, usable func(p topology.Path) bool) int {
	lst := db.perDst[dst]
	kept := lst[:0]
	removed := 0
	for _, s := range lst {
		ok := true
		for i := range s.paths {
			if !usable(s.paths[i].path) {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, s)
		} else {
			removed++
		}
	}
	if removed > 0 {
		db.perDst[dst] = kept
		if len(kept) == 0 {
			delete(db.perDst, dst)
		}
	}
	return removed
}

// Size returns the number of saved solutions across destinations.
func (db *SolutionDB) Size() int {
	n := 0
	for _, lst := range db.perDst {
		n += len(lst)
	}
	return n
}

// Patterns returns every stored solution (for reporting).
func (db *SolutionDB) Patterns() []*Solution {
	var out []*Solution
	for _, lst := range db.perDst {
		out = append(out, lst...)
	}
	return out
}
