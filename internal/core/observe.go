package core

// OpenPathCounts reports the controller fleet's live metapath state: how
// many metapaths currently hold more than their direct path (open, in the
// paper's sense — distributing a flow over alternatives), and how many
// extra (non-direct) paths those metapaths have injected in total. Pure
// counting over controller-owned maps, so it must run where the
// controllers are quiescent (engine goroutine, or a shard-group barrier).
// Nil controllers (nodes without PR-DRB) are skipped.
func OpenPathCounts(ctls []*Controller) (openMetapaths, extraPaths int) {
	for _, c := range ctls {
		if c == nil {
			continue
		}
		for _, mp := range c.mps {
			if n := len(mp.paths); n > 1 {
				openMetapaths++
				extraPaths += n - 1
			}
		}
	}
	return openMetapaths, extraPaths
}
