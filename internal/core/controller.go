package core

import (
	"fmt"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/telemetry"
	"prdrb/internal/topology"
)

// Stats counts the controller's decisions, matching the quantities the
// paper reports per router/application (e.g. patterns found/repeated in
// Figs 4.26b, §4.8.4).
type Stats struct {
	PathsOpened   int64
	PathsClosed   int64
	PatternsSaved int64
	// PatternsReused counts distinct saved solutions that were re-applied
	// at least once; ReuseApplications counts every application.
	PatternsReused    int64
	ReuseApplications int64
	WatchdogFirings   int64
	AcksSeen          int64
	PredictiveAcks    int64
	// TrendFirings counts early reactions triggered by the latency-trend
	// predictor (§5.2 extension).
	TrendFirings int64
	// PathFailures counts packet-loss notifications received from the
	// fabric (a path died under our traffic).
	PathFailures int64
	// SolutionsInvalidated counts saved solutions discarded because their
	// path set crossed a failed link.
	SolutionsInvalidated int64
	// Recoveries counts completed failure-to-recovery cycles (first
	// successful ACK after a loss event).
	Recoveries int64
}

// Add accumulates other into s (for fleet-wide aggregation).
func (s *Stats) Add(other Stats) {
	s.PathsOpened += other.PathsOpened
	s.PathsClosed += other.PathsClosed
	s.PatternsSaved += other.PatternsSaved
	s.PatternsReused += other.PatternsReused
	s.ReuseApplications += other.ReuseApplications
	s.WatchdogFirings += other.WatchdogFirings
	s.AcksSeen += other.AcksSeen
	s.PredictiveAcks += other.PredictiveAcks
	s.TrendFirings += other.TrendFirings
	s.PathFailures += other.PathFailures
	s.SolutionsInvalidated += other.SolutionsInvalidated
	s.Recoveries += other.Recoveries
}

// Controller is the per-source-node DRB / PR-DRB engine. It implements
// network.SourceController.
type Controller struct {
	Node topology.NodeID
	Cfg  Config

	topo topology.Topology
	eng  *sim.Engine
	rng  *sim.RNG

	mps map[topology.NodeID]*metapath
	db  *SolutionDB

	// PathCheck, when set, is the fabric's link-health feasibility
	// predicate: it reports whether a multistep path currently traverses
	// only live links. Path selection, opening and solution reuse filter
	// through it. Nil means "always feasible" (healthy fabric).
	PathCheck func(src, dst topology.NodeID, p topology.Path) bool
	// PathSource, when set, supplies alternative-path enumerations in
	// place of direct topology calls — assembled simulations point it at
	// a shared per-shard topology.PathCache so repeated congestion
	// episodes across a shard's controllers reuse one bounded enumeration
	// instead of re-deriving (and re-allocating) the same path sets.
	PathSource func(src, dst topology.NodeID, max int) []topology.Path
	// OnRecovery, when set, observes each failure-to-recovery latency
	// (loss notification -> next successful ACK for that destination).
	OnRecovery func(d sim.Time)
	// Trace records the controller's decisions as control events (nil =
	// tracing off; every emission is nil-guarded by the tracer itself).
	Trace *telemetry.Tracer
	// Rec feeds metapath open/close transitions into the shard's flight
	// recorder (nil = recorder off).
	Rec *telemetry.FlightRecorder

	Stats Stats
}

// New builds a controller for one source node. It panics on an invalid
// configuration (a policy bug, not an input condition).
func New(node topology.NodeID, topo topology.Topology, eng *sim.Engine, cfg Config, rng *sim.RNG) *Controller {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Controller{
		Node: node,
		Cfg:  cfg,
		topo: topo,
		eng:  eng,
		rng:  rng,
		mps:  make(map[topology.NodeID]*metapath),
	}
	if cfg.Predictive {
		c.db = NewSolutionDB()
	}
	return c
}

// Name implements network.SourceController.
func (c *Controller) Name() string {
	switch {
	case c.Cfg.Predictive && c.Cfg.Watchdog > 0:
		return "pr-fr-drb"
	case c.Cfg.Predictive:
		return "pr-drb"
	case c.Cfg.Watchdog > 0:
		return "fr-drb"
	default:
		return "drb"
	}
}

// DB exposes the solution database (nil for non-predictive variants).
func (c *Controller) DB() *SolutionDB { return c.db }

func (c *Controller) metapathFor(dst topology.NodeID) *metapath {
	mp := c.mps[dst]
	if mp == nil {
		mp = newMetapath(dst, c.Cfg.LatencyFloor)
		c.mps[dst] = mp
	}
	return mp
}

// PrepareInjection implements network.SourceController: multistep path
// selection (Fig 3.11, Alg A.3). A destination idle beyond IdleReset first
// relaxes back to the direct path (the inter-burst closing of Fig 3.1).
func (c *Controller) PrepareInjection(e *sim.Engine, pkt *network.Packet) {
	mp := c.metapathFor(pkt.Dst)
	if c.Cfg.IdleReset > 0 && mp.lastInject != 0 && e.Now()-mp.lastInject > c.Cfg.IdleReset {
		c.relax(mp)
	}
	mp.lastInject = e.Now()
	p := mp.selectPath(&c.Cfg, c.rng, c.usableFilter(mp))
	if c.PathCheck != nil && !c.PathCheck(c.Node, pkt.Dst, p.path) {
		// Every open path crosses a failed link: the transport can see the
		// injection is doomed before the fabric drops anything. React now —
		// same actions as a loss notification — then reselect, which finds
		// any feasible detour the reconfiguration just opened.
		c.Stats.PathFailures++
		c.pathLost(e, mp)
		p = mp.selectPath(&c.Cfg, c.rng, c.usableFilter(mp))
	}
	pkt.Waypoints = append(topology.Path(nil), p.path...)
	pkt.MSPIndex = p.id
	mp.outstanding++
	if c.Cfg.Watchdog > 0 {
		if mp.watchdog == nil {
			dst := pkt.Dst
			mp.watchdog = sim.NewTimer(e, func(e *sim.Engine) { c.watchdogExpired(e, dst) })
		}
		if !mp.watchdog.Armed() {
			mp.watchdog.Reset(c.Cfg.Watchdog)
		}
	}
}

// HandleAck implements network.SourceController: metapath configuration
// (Fig 3.8, Alg A.2) driven by destination or router notifications.
func (c *Controller) HandleAck(e *sim.Engine, ack *network.Packet) {
	c.Stats.AcksSeen++
	// ack.Src is the data flow's destination (the node that ACKed, or, for
	// router-injected predictive ACKs, the contended flow's destination).
	mp := c.metapathFor(ack.Src)

	if ack.Predictive {
		c.Stats.PredictiveAcks++
	}
	// Fold in contending-flow evidence (§3.2.7).
	for _, f := range ack.Contending {
		mp.flowSeen[f] = e.Now()
	}

	if ack.MSPIndex >= 0 {
		if mp.failedAt != 0 {
			// First successful delivery ACK after a loss: the metapath has
			// recovered; report the end-to-end recovery latency.
			c.Stats.Recoveries++
			if c.OnRecovery != nil {
				c.OnRecovery(e.Now() - mp.failedAt)
			}
			c.Trace.Control(e.Now(), telemetry.KindRecovery, int(c.Node), int(mp.dst), e.Now()-mp.failedAt, 0)
			mp.failedAt = 0
		}
		mp.observe(&c.Cfg, ack.MSPIndex, ack.PathLatency)
		if mp.outstanding > 0 {
			mp.outstanding--
		}
		if mp.watchdog != nil {
			if mp.outstanding > 0 {
				mp.watchdog.Reset(c.Cfg.Watchdog)
			} else {
				mp.watchdog.Stop()
			}
		}
		c.evaluate(e, mp)
		c.observeTrend(e, mp)
	} else if ack.Predictive {
		// Router-based early notification (§3.4.1): no per-path latency,
		// but an unambiguous congestion signal — force the H actions now.
		c.enterHigh(e, mp)
	}
}

// zoneOf classifies a metapath latency against the thresholds (Eq 3.5).
func (c *Controller) zoneOf(latNs float64) Zone {
	switch {
	case latNs > float64(c.Cfg.ThresholdHigh):
		return ZoneHigh
	case latNs < float64(c.Cfg.ThresholdLow):
		return ZoneLow
	default:
		return ZoneMedium
	}
}

// evaluate advances the metapath-configuration FSM (Fig 3.12).
func (c *Controller) evaluate(e *sim.Engine, mp *metapath) {
	lat := mp.latency(float64(c.Cfg.LatencyFloor))
	z := c.zoneOf(lat)
	old := mp.zone
	mp.zone = z
	switch {
	case z == ZoneHigh:
		if old != ZoneHigh {
			// M->H: congestion detected. Predictive variants first look for
			// an already analyzed situation (§3.2.6).
			c.Trace.Control(e.Now(), telemetry.KindSaturation, int(c.Node), int(mp.dst), sim.Time(lat), 0)
			if c.Cfg.Predictive && c.tryReuse(e, mp) {
				return
			}
		}
		c.maybeOpen(e, mp)
	case old == ZoneHigh:
		// H->M / H->L: good paths found; the predictive layer saves them.
		if c.Cfg.Predictive {
			c.saveSolution(e, mp)
		}
		if z == ZoneLow {
			c.maybeClose(mp)
		}
	case z == ZoneLow && old != ZoneLow:
		// M->L: the network absorbs the traffic; shrink the metapath.
		c.maybeClose(mp)
	case z == ZoneLow && len(mp.paths) > 1:
		c.maybeClose(mp)
	}
}

// enterHigh applies the M->H actions unconditionally (used by router-based
// predictive ACKs and the FR-DRB watchdog, both of which signal congestion
// without a metapath-latency sample).
func (c *Controller) enterHigh(e *sim.Engine, mp *metapath) {
	was := mp.zone
	mp.zone = ZoneHigh
	if was != ZoneHigh {
		c.Trace.Control(e.Now(), telemetry.KindSaturation, int(c.Node), int(mp.dst), 0, 0)
		if c.Cfg.Predictive && c.tryReuse(e, mp) {
			return
		}
	}
	c.maybeOpen(e, mp)
}

// watchdogExpired is the FR-DRB fast response (§4.8.4): outstanding traffic
// with no ACK within the window means the notification itself is stuck in
// congestion; react immediately.
func (c *Controller) watchdogExpired(e *sim.Engine, dst topology.NodeID) {
	mp := c.metapathFor(dst)
	if mp.outstanding == 0 {
		return
	}
	c.Stats.WatchdogFirings++
	c.Trace.Control(e.Now(), telemetry.KindWatchdog, int(c.Node), int(dst), 0, 0)
	c.enterHigh(e, mp)
	mp.watchdog.Reset(c.Cfg.Watchdog)
}

// usableFilter adapts PathCheck to the metapath's path-state records; nil
// when no health predicate is installed.
func (c *Controller) usableFilter(mp *metapath) func(p *pathState) bool {
	if c.PathCheck == nil {
		return nil
	}
	return func(p *pathState) bool { return c.PathCheck(c.Node, mp.dst, p.path) }
}

// HandlePacketLoss implements network.FailureAware: a packet of ours died
// on a failed link. This is the loss-of-ack signal treated as a HIGH-zone
// event (the fabric itself told us the path is gone, stronger evidence
// than any latency sample): the dead paths are pruned, saved solutions
// that depend on them are invalidated, and the metapath reselects.
func (c *Controller) HandlePacketLoss(e *sim.Engine, pkt *network.Packet) {
	dst := pkt.Dst
	if pkt.Type == network.AckPacket {
		// A lost ACK was heading back to us; the metapath it reported on
		// is the one toward the ACK's sender.
		dst = pkt.Src
	}
	mp := c.metapathFor(dst)
	c.Stats.PathFailures++
	if mp.outstanding > 0 {
		mp.outstanding--
	}
	c.pathLost(e, mp)
}

// pathLost runs the reconfiguration shared by the two failure signals
// (in-flight drop, dead-path-at-injection): start the recovery clock,
// prune dead paths, invalidate dependent saved solutions, rebuild the
// candidate pool and force the H-zone actions.
func (c *Controller) pathLost(e *sim.Engine, mp *metapath) {
	if mp.failedAt == 0 {
		mp.failedAt = e.Now()
	}
	c.Trace.Control(e.Now(), telemetry.KindPathFail, int(c.Node), int(mp.dst), 0, 0)
	c.pruneDeadPaths(mp)
	if c.db != nil {
		c.Stats.SolutionsInvalidated += int64(c.db.Invalidate(int(mp.dst), func(p topology.Path) bool {
			return c.PathCheck == nil || c.PathCheck(c.Node, mp.dst, p)
		}))
	}
	// The candidate pool predates the failure; rebuild it on demand so the
	// reopened aperture only offers feasible detours.
	mp.pool = nil
	mp.poolInit = false
	c.enterHigh(e, mp)
}

// pruneDeadPaths closes every alternative path that now crosses a failed
// link. The direct path (index 0) is structural and never removed; when
// infeasible it is simply excluded from selection.
func (c *Controller) pruneDeadPaths(mp *metapath) {
	if c.PathCheck == nil {
		return
	}
	kept := mp.paths[:1]
	pruned := 0
	for _, p := range mp.paths[1:] {
		if c.PathCheck(c.Node, mp.dst, p.path) {
			kept = append(kept, p)
		} else {
			c.Stats.PathsClosed++
			pruned++
		}
	}
	mp.paths = kept
	if pruned > 0 {
		c.Trace.Control(c.eng.Now(), telemetry.KindMetapathClose, int(c.Node), int(mp.dst), 0, int64(len(mp.paths)))
		c.recordFlight(telemetry.FlightPathClose, mp.dst, len(mp.paths))
	}
}

// recordFlight feeds one metapath transition into the flight recorder.
func (c *Controller) recordFlight(kind string, dst topology.NodeID, paths int) {
	if c.Rec == nil {
		return
	}
	c.Rec.Record(telemetry.FlightEvent{
		AtNs: int64(c.eng.Now()), Kind: kind, Router: -1, Port: -1, VC: -1,
		Src: int(c.Node), Dst: int(dst), Val: int64(paths),
	})
}

// maybeOpen grows the metapath by one alternative path (§3.2.3), respecting
// MaxPaths and the open-rate limit. The interval is jittered ±25% per
// decision: at scale, hundreds of controllers otherwise react to the same
// congestion signal in lockstep and thrash the load from one region to
// another in synchronized waves.
func (c *Controller) maybeOpen(e *sim.Engine, mp *metapath) {
	if len(mp.paths) >= c.Cfg.MaxPaths {
		return
	}
	if mp.lastOpen != 0 {
		jittered := sim.Time(float64(c.Cfg.OpenInterval) * (0.75 + 0.5*c.rng.Float64()))
		if e.Now()-mp.lastOpen < jittered {
			return
		}
	}
	if !mp.poolInit {
		mp.pool = c.enumeratePaths(mp.dst)
		mp.poolInit = true
	}
	// Skip candidates already open or currently infeasible (failed links).
	for len(mp.pool) > 0 {
		cand := mp.pool[0]
		mp.pool = mp.pool[1:]
		if mp.hasPath(cand) {
			continue
		}
		if c.PathCheck != nil && !c.PathCheck(c.Node, mp.dst, cand) {
			continue
		}
		direct := topology.PathLength(c.topo, c.Node, mp.dst, nil)
		mp.paths = append(mp.paths, pathState{
			id:        mp.nextPathID,
			path:      cand,
			latNs:     c.currentBest(mp), // optimistic: probe the new path
			extraHops: topology.PathLength(c.topo, c.Node, mp.dst, cand) - direct,
		})
		mp.nextPathID++
		mp.lastOpen = e.Now()
		c.Stats.PathsOpened++
		c.Trace.Control(e.Now(), telemetry.KindMetapathOpen, int(c.Node), int(mp.dst), 0, int64(len(mp.paths)))
		c.recordFlight(telemetry.FlightPathOpen, mp.dst, len(mp.paths))
		return
	}
}

// enumeratePaths fetches the alternative-path pool for dst, through the
// shared PathSource cache when one is wired, else straight from the
// topology. Both return shared immutable slices: the pool is consumed by
// re-slicing (mp.pool[1:]) and selected paths are copied before mutation,
// so aliasing the cache's storage is safe.
func (c *Controller) enumeratePaths(dst topology.NodeID) []topology.Path {
	if c.PathSource != nil {
		return c.PathSource(c.Node, dst, 2*c.Cfg.MaxPaths)
	}
	return c.topo.AlternativePaths(c.Node, dst, 2*c.Cfg.MaxPaths)
}

// currentBest returns the lowest path latency in the metapath, the
// optimistic initial estimate for a newly opened path.
func (c *Controller) currentBest(mp *metapath) float64 {
	best := mp.paths[0].latNs
	for i := range mp.paths {
		if mp.paths[i].latNs < best {
			best = mp.paths[i].latNs
		}
	}
	return best
}

func (mp *metapath) hasPath(p topology.Path) bool {
	for i := range mp.paths {
		if mp.paths[i].path.Equal(p) {
			return true
		}
	}
	return false
}

// relax closes every alternative path and forgets the transient latency
// state: the metapath returns to the original single path, as after the
// M->L closing procedures have fully run (Fig 3.9). The alternative-path
// pool is regenerated so the next congestion can expand again.
func (c *Controller) relax(mp *metapath) {
	if n := len(mp.paths); n > 1 {
		c.Stats.PathsClosed += int64(n - 1)
		c.Trace.Control(c.eng.Now(), telemetry.KindMetapathClose, int(c.Node), int(mp.dst), 0, 1)
		c.recordFlight(telemetry.FlightPathClose, mp.dst, 1)
	}
	mp.paths = mp.paths[:1]
	mp.paths[0].latNs = float64(c.Cfg.LatencyFloor)
	mp.paths[0].acks = 0
	mp.zone = ZoneLow
	mp.pool = nil
	mp.poolInit = false
	mp.lastOpen = 0
	mp.outstanding = 0
	mp.failedAt = 0
	mp.trend = trendTracker{}
}

// maybeClose removes the worst-latency alternative path (never the direct
// path), shrinking toward the original route as traffic relaxes.
func (c *Controller) maybeClose(mp *metapath) {
	if len(mp.paths) <= 1 {
		return
	}
	worst, worstLat := -1, -1.0
	for i := 1; i < len(mp.paths); i++ {
		if mp.paths[i].latNs > worstLat {
			worst, worstLat = i, mp.paths[i].latNs
		}
	}
	// Never strand the metapath: with the direct path dead, the relaxation
	// that follows each recovered ACK would otherwise close the one feasible
	// detour and re-fail on the next injection, forever.
	if c.PathCheck != nil {
		usableLeft := 0
		for i := range mp.paths {
			if i != worst && c.PathCheck(c.Node, mp.dst, mp.paths[i].path) {
				usableLeft++
			}
		}
		if usableLeft == 0 {
			return
		}
	}
	mp.paths = append(mp.paths[:worst], mp.paths[worst+1:]...)
	c.Stats.PathsClosed++
	c.Trace.Control(c.eng.Now(), telemetry.KindMetapathClose, int(c.Node), int(mp.dst), 0, int64(len(mp.paths)))
	c.recordFlight(telemetry.FlightPathClose, mp.dst, len(mp.paths))
}

// evidence builds the current contending-flow signature for a destination
// from reports within the evidence window.
func (c *Controller) evidence(e *sim.Engine, mp *metapath) Signature {
	var flows []network.FlowKey
	for f, seen := range mp.flowSeen {
		if e.Now()-seen <= c.Cfg.EvidenceWindow {
			flows = append(flows, f)
		} else {
			delete(mp.flowSeen, f)
		}
	}
	return NewSignature(flows, c.Cfg.MaxSignature)
}

// tryReuse looks up a saved solution for the current pattern and applies it
// wholesale — "maximum path expansion is directly done" (§4.6.3). Reports
// whether a solution was applied.
func (c *Controller) tryReuse(e *sim.Engine, mp *metapath) bool {
	sig := c.evidence(e, mp)
	if len(sig) == 0 {
		return false
	}
	sol := c.db.Lookup(int(mp.dst), sig, c.Cfg.Similarity)
	if sol == nil {
		c.Trace.Control(e.Now(), telemetry.KindSolDBMiss, int(c.Node), int(mp.dst), 0, int64(c.db.Size()))
		return false
	}
	if c.PathCheck != nil {
		// A saved solution is only as good as its links: one that crosses
		// a failed link must not be re-applied wholesale.
		for i := range sol.paths {
			if !c.PathCheck(c.Node, mp.dst, sol.paths[i].path) {
				c.Trace.Control(e.Now(), telemetry.KindSolDBMiss, int(c.Node), int(mp.dst), 0, int64(c.db.Size()))
				return false
			}
		}
	}
	mp.restore(sol.paths)
	mp.lastOpen = e.Now()
	if sol.Hits == 0 {
		c.Stats.PatternsReused++
	}
	sol.Hits++
	c.Stats.ReuseApplications++
	c.Trace.Control(e.Now(), telemetry.KindSolDBHit, int(c.Node), int(mp.dst), 0, int64(c.db.Size()))
	return true
}

// saveSolution records the path set that brought the metapath out of the
// high zone, keyed by the contending pattern (§3.2.8, Fig 3.14).
func (c *Controller) saveSolution(e *sim.Engine, mp *metapath) {
	sig := c.evidence(e, mp)
	if len(sig) == 0 {
		return
	}
	if c.db.Save(int(mp.dst), sig, mp.snapshot(), c.Cfg.Similarity, e.Now()) != nil {
		c.Stats.PatternsSaved++
		c.Trace.Control(e.Now(), telemetry.KindSolDBSave, int(c.Node), int(mp.dst), 0, int64(c.db.Size()))
	}
}

// PathCount reports the current number of MSPs toward dst (1 = direct
// only). Used by tests and the path-opening walkthrough example.
func (c *Controller) PathCount(dst topology.NodeID) int {
	if mp := c.mps[dst]; mp != nil {
		return len(mp.paths)
	}
	return 1
}

// ZoneFor reports the current congestion zone toward dst.
func (c *Controller) ZoneFor(dst topology.NodeID) Zone {
	if mp := c.mps[dst]; mp != nil {
		return mp.zone
	}
	return ZoneLow
}

// MetapathLatency reports L(MP) (Eq 3.4) toward dst in nanoseconds.
func (c *Controller) MetapathLatency(dst topology.NodeID) float64 {
	if mp := c.mps[dst]; mp != nil {
		return mp.latency(float64(c.Cfg.LatencyFloor))
	}
	return float64(c.Cfg.LatencyFloor)
}

// Paths returns a copy of the current waypoint sets toward dst, direct
// path first.
func (c *Controller) Paths(dst topology.NodeID) []topology.Path {
	mp := c.mps[dst]
	if mp == nil {
		return []topology.Path{nil}
	}
	out := make([]topology.Path, len(mp.paths))
	for i := range mp.paths {
		out[i] = append(topology.Path(nil), mp.paths[i].path...)
	}
	return out
}

// Install builds one controller per node over net, all sharing cfg, and
// returns them. rngSeed derives per-node streams. Controllers are wired to
// the fabric's link-health predicate and the collector's recovery
// histogram, making them fault-aware.
func Install(net *network.Network, cfg Config, rngSeed uint64) []*Controller {
	ctls := make([]*Controller, net.Topo.NumTerminals())
	root := sim.NewRNG(rngSeed)
	// One bounded path cache per shard: every controller on a shard runs on
	// that shard's engine goroutine, so the (non-thread-safe) cache sees
	// strictly serial access, and hot destination sets are shared across
	// the shard's sources instead of enumerated per controller. The bound
	// keeps resident pairs O(active flows), not O(N^2).
	caches := make(map[*sim.Engine]*topology.PathCache)
	capacity := 4 * net.Topo.NumTerminals()
	if capacity < 256 {
		capacity = 256
	}
	net.SetSourceController(func(node topology.NodeID) network.SourceController {
		// Each controller binds to its node's shard: engine, tracer and
		// collector all come from the shard owning the node's NIC, so
		// controller callbacks stay shard-local in parallel runs.
		eng := net.EngineForNode(node)
		ctl := New(node, net.Topo, eng, cfg, root.Split(uint64(node)+1))
		ctl.PathCheck = net.PathUsable
		ctl.Trace = net.TracerForNode(node)
		ctl.Rec = net.RecorderForNode(node)
		if col := net.CollectorForNode(node); col != nil {
			ctl.OnRecovery = col.PathRecovered
		}
		pc := caches[eng]
		if pc == nil {
			pc = topology.NewPathCache(net.Topo, 2*cfg.MaxPaths, capacity)
			caches[eng] = pc
		}
		ctl.PathSource = func(src, dst topology.NodeID, max int) []topology.Path {
			if max != pc.PerPair() {
				return net.Topo.AlternativePaths(src, dst, max)
			}
			return pc.Paths(src, dst)
		}
		ctls[node] = ctl
		return ctl
	})
	return ctls
}

// AggregateStats sums the stats of a controller fleet.
func AggregateStats(ctls []*Controller) Stats {
	var s Stats
	for _, c := range ctls {
		if c != nil {
			s.Add(c.Stats)
		}
	}
	return s
}

var (
	_ network.SourceController = (*Controller)(nil)
	_ network.FailureAware     = (*Controller)(nil)
)

func init() {
	// Compile-time-ish sanity: the names must match ConfigByName.
	for _, name := range []string{"drb", "pr-drb", "fr-drb", "pr-fr-drb"} {
		if _, ok := ConfigByName(name); !ok {
			panic(fmt.Sprintf("core: ConfigByName missing %q", name))
		}
	}
}
