package core

import (
	"math"
	"testing"
	"testing/quick"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"drb": DRBConfig(), "pr-drb": PRDRBConfig(), "fr-drb": FRDRBConfig(), "pr-fr-drb": PRFRDRBConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	bad := []func(*Config){
		func(c *Config) { c.ThresholdLow = 0 },
		func(c *Config) { c.ThresholdHigh = c.ThresholdLow },
		func(c *Config) { c.MaxPaths = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1.5 },
		func(c *Config) { c.LatencyFloor = 0 },
		func(c *Config) { c.Watchdog = -1 },
	}
	for i, mutate := range bad {
		cfg := DRBConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	cfg := PRDRBConfig()
	cfg.Similarity = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero similarity accepted for predictive config")
	}
}

func TestControllerNames(t *testing.T) {
	topo := topology.NewMesh(4, 4)
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)
	for want, cfg := range map[string]Config{
		"drb": DRBConfig(), "pr-drb": PRDRBConfig(), "fr-drb": FRDRBConfig(), "pr-fr-drb": PRFRDRBConfig(),
	} {
		if got := New(0, topo, eng, cfg, rng).Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestMetapathLatencyEq34(t *testing.T) {
	mp := newMetapath(5, 500)
	mp.paths[0].latNs = 1000
	// Single path: L(MP) = path latency.
	if got := mp.latency(500); got != 1000 {
		t.Fatalf("L(MP) single = %v", got)
	}
	// Two paths 1000 and 1000: harmonic aggregate = 500.
	mp.paths = append(mp.paths, pathState{id: 1, latNs: 1000})
	if got := mp.latency(500); math.Abs(got-500) > 1e-9 {
		t.Fatalf("L(MP) double = %v, want 500", got)
	}
	// 1000 and 3000: 1/(1/1000+1/3000) = 750.
	mp.paths[1].latNs = 3000
	if got := mp.latency(500); math.Abs(got-750) > 1e-9 {
		t.Fatalf("L(MP) = %v, want 750", got)
	}
}

// Property: Eq 3.6 selection frequencies are inversely proportional to
// latencies.
func TestSelectionPDF(t *testing.T) {
	cfg := DRBConfig()
	cfg.HopPenalty = 0
	mp := newMetapath(1, cfg.LatencyFloor)
	mp.paths[0].latNs = 10000
	mp.paths = append(mp.paths, pathState{id: 1, latNs: 30000})
	rng := sim.NewRNG(42)
	counts := map[int]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[mp.selectPath(&cfg, rng, nil).id]++
	}
	// Expected shares: (1/10k)/(1/10k+1/30k)=0.75 vs 0.25.
	got := float64(counts[0]) / n
	if math.Abs(got-0.75) > 0.02 {
		t.Fatalf("path 0 selected %.3f of the time, want ~0.75", got)
	}
}

func TestSelectionPrefersShorterPaths(t *testing.T) {
	cfg := DRBConfig()
	mp := newMetapath(1, cfg.LatencyFloor)
	mp.paths[0].latNs = 5000
	// Same latency but 4 extra hops: must be picked less often.
	mp.paths = append(mp.paths, pathState{id: 1, latNs: 5000, extraHops: 4})
	rng := sim.NewRNG(7)
	counts := map[int]int{}
	for i := 0; i < 20000; i++ {
		counts[mp.selectPath(&cfg, rng, nil).id]++
	}
	if counts[1] >= counts[0] {
		t.Fatalf("longer path selected as often: %v", counts)
	}
}

func TestObserveEWMA(t *testing.T) {
	cfg := DRBConfig()
	mp := newMetapath(1, cfg.LatencyFloor)
	mp.observe(&cfg, 0, 10000)
	if mp.paths[0].latNs != 10000 {
		t.Fatalf("first sample not adopted: %v", mp.paths[0].latNs)
	}
	mp.observe(&cfg, 0, 20000)
	want := 0.3*20000 + 0.7*10000
	if math.Abs(mp.paths[0].latNs-want) > 1e-9 {
		t.Fatalf("EWMA = %v, want %v", mp.paths[0].latNs, want)
	}
	// Unknown path id ignored.
	mp.observe(&cfg, 99, 5)
}

func TestSignatureNormalization(t *testing.T) {
	a := NewSignature([]network.FlowKey{{Src: 3, Dst: 4}, {Src: 1, Dst: 2}, {Src: 3, Dst: 4}}, 10)
	if len(a) != 2 || a[0] != (network.FlowKey{Src: 1, Dst: 2}) {
		t.Fatalf("signature = %v", a)
	}
	b := NewSignature([]network.FlowKey{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}, {Src: 5, Dst: 6}}, 2)
	if len(b) != 2 {
		t.Fatalf("cap not applied: %v", b)
	}
}

func TestSimilarity(t *testing.T) {
	a := NewSignature([]network.FlowKey{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}, 0)
	b := NewSignature([]network.FlowKey{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}, 0)
	if Similarity(a, b) != 1 {
		t.Fatal("identical signatures not similarity 1")
	}
	c := NewSignature([]network.FlowKey{{Src: 1, Dst: 2}, {Src: 5, Dst: 6}}, 0)
	if got := Similarity(a, c); got != 0.5 {
		t.Fatalf("half-overlap similarity = %v", got)
	}
	if Similarity(a, nil) != 0 || Similarity(nil, nil) != 1 {
		t.Fatal("empty-signature cases wrong")
	}
	// The paper's 80%: 4 of 5 flows shared -> 2*4/10 = 0.8 passes.
	var xs, ys []network.FlowKey
	for i := 0; i < 5; i++ {
		xs = append(xs, network.FlowKey{Src: topology.NodeID(i), Dst: 9})
	}
	ys = append(ys, xs[:4]...)
	ys = append(ys, network.FlowKey{Src: 7, Dst: 8})
	if got := Similarity(NewSignature(xs, 0), NewSignature(ys, 0)); got < 0.8 {
		t.Fatalf("4/5 overlap = %v, want >= 0.8", got)
	}
}

// Property: Similarity is symmetric and within [0,1].
func TestSimilarityProperty(t *testing.T) {
	f := func(av, bv []uint8) bool {
		toSig := func(v []uint8) Signature {
			var fl []network.FlowKey
			for _, x := range v {
				fl = append(fl, network.FlowKey{Src: topology.NodeID(x % 16), Dst: topology.NodeID(x / 16)})
			}
			return NewSignature(fl, 0)
		}
		a, b := toSig(av), toSig(bv)
		s1, s2 := Similarity(a, b), Similarity(b, a)
		return s1 == s2 && s1 >= 0 && s1 <= 1 && Similarity(a, a) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSolutionDBSaveLookupUpdate(t *testing.T) {
	db := NewSolutionDB()
	sig := NewSignature([]network.FlowKey{{Src: 1, Dst: 9}, {Src: 2, Dst: 9}}, 0)
	paths := []pathState{{id: 0}, {id: 1, path: topology.Path{5}}}
	if db.Save(9, nil, paths, 0.8, 0) != nil {
		t.Fatal("empty signature saved")
	}
	s := db.Save(9, sig, paths, 0.8, 100)
	if s == nil || db.Size() != 1 {
		t.Fatal("save failed")
	}
	if got := db.Lookup(9, sig, 0.8); got != s {
		t.Fatal("lookup missed exact signature")
	}
	if db.Lookup(8, sig, 0.8) != nil {
		t.Fatal("lookup crossed destinations")
	}
	// A matching signature updates in place instead of duplicating.
	s2 := db.Save(9, sig, paths, 0.8, 200)
	if s2 != s || db.Size() != 1 || s.Updates != 1 {
		t.Fatal("matching save did not update in place")
	}
	// A disjoint signature adds a new entry.
	sig2 := NewSignature([]network.FlowKey{{Src: 7, Dst: 9}}, 0)
	db.Save(9, sig2, paths, 0.8, 300)
	if db.Size() != 2 {
		t.Fatal("disjoint save did not add")
	}
	if len(db.Patterns()) != 2 {
		t.Fatal("Patterns() incomplete")
	}
}

func TestSolutionDBEviction(t *testing.T) {
	db := NewSolutionDB()
	db.MaxPerDst = 3
	for i := 0; i < 5; i++ {
		sig := NewSignature([]network.FlowKey{{Src: topology.NodeID(i), Dst: 50}}, 0)
		db.Save(1, sig, nil, 0.8, sim.Time(i))
	}
	if db.Size() != 3 {
		t.Fatalf("eviction kept %d entries", db.Size())
	}
}

func TestMetapathRestoreAssignsFreshIDs(t *testing.T) {
	mp := newMetapath(3, 500)
	saved := []pathState{
		{id: 0, latNs: 1000},
		{id: 7, path: topology.Path{4}, latNs: 2000, acks: 55},
	}
	mp.restore(saved)
	if len(mp.paths) != 2 {
		t.Fatal("restore lost paths")
	}
	if mp.paths[0].id != 0 || len(mp.paths[0].path) != 0 {
		t.Fatal("direct path mangled")
	}
	if mp.paths[1].id == 7 || mp.paths[1].acks != 0 {
		t.Fatal("restored path kept stale identity")
	}
	if mp.paths[1].latNs != 2000 {
		t.Fatal("restored path lost its saved latency weight")
	}
}

func TestZoneClassification(t *testing.T) {
	c := New(0, topology.NewMesh(4, 4), sim.NewEngine(), DRBConfig(), sim.NewRNG(1))
	if c.zoneOf(float64(sim.Microsecond)) != ZoneLow {
		t.Fatal("1us should be Low")
	}
	if c.zoneOf(float64(5*sim.Microsecond)) != ZoneMedium {
		t.Fatal("5us should be Medium")
	}
	if c.zoneOf(float64(50*sim.Microsecond)) != ZoneHigh {
		t.Fatal("50us should be High")
	}
	if ZoneLow.String() != "L" || ZoneMedium.String() != "M" || ZoneHigh.String() != "H" {
		t.Fatal("zone strings wrong")
	}
}

// Feeding high-latency ACKs must walk the FSM: open paths up to MaxPaths;
// low-latency ACKs must close them back down to the direct path.
func TestFSMOpensAndClosesPaths(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := DRBConfig()
	cfg.OpenInterval = 0
	ctl := New(0, topo, eng, cfg, sim.NewRNG(3))

	ack := func(lat sim.Time, mspID int) *network.Packet {
		return &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0, MSPIndex: mspID, PathLatency: lat}
	}
	advance := func() {
		eng.Schedule(eng.Now()+sim.Microsecond, func(*sim.Engine) {})
		eng.RunAll()
	}
	// Congest the direct path: repeated high-latency ACKs.
	for i := 0; i < 6; i++ {
		ctl.HandleAck(eng, ack(100*sim.Microsecond, 0))
		advance()
	}
	if got := ctl.PathCount(63); got != cfg.MaxPaths {
		t.Fatalf("paths after congestion = %d, want %d", got, cfg.MaxPaths)
	}
	if ctl.ZoneFor(63) != ZoneHigh {
		t.Fatalf("zone = %v, want H", ctl.ZoneFor(63))
	}
	// Relax: low-latency ACKs on every open path shrink the metapath.
	for i := 0; i < 40 && ctl.PathCount(63) > 1; i++ {
		for _, id := range openPathIDs(ctl, 63) {
			ctl.HandleAck(eng, ack(100*sim.Nanosecond, id))
		}
		advance()
	}
	if got := ctl.PathCount(63); got != 1 {
		t.Fatalf("paths after relaxation = %d, want 1", got)
	}
	if ctl.Stats.PathsOpened == 0 || ctl.Stats.PathsClosed == 0 {
		t.Fatal("stats not recorded")
	}
}

func openPathIDs(c *Controller, dst topology.NodeID) []int {
	mp := c.mps[dst]
	ids := make([]int, len(mp.paths))
	for i := range mp.paths {
		ids[i] = mp.paths[i].id
	}
	return ids
}

// The predictive layer must save the solution on H->M and re-apply it
// instantly on the next M->H with the same contending pattern.
func TestPredictiveSaveAndReuse(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := PRDRBConfig()
	cfg.OpenInterval = 0
	ctl := New(0, topo, eng, cfg, sim.NewRNG(3))
	pattern := []network.FlowKey{{Src: 0, Dst: 63}, {Src: 7, Dst: 63}, {Src: 56, Dst: 63}}

	ack := func(lat sim.Time, mspID int, flows []network.FlowKey) *network.Packet {
		return &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
			MSPIndex: mspID, PathLatency: lat, Contending: flows}
	}
	advance := func() {
		eng.Schedule(eng.Now()+sim.Microsecond, func(*sim.Engine) {})
		eng.RunAll()
	}
	// Burst 1: congestion with the pattern, gradual opening.
	for i := 0; i < 6; i++ {
		ctl.HandleAck(eng, ack(100*sim.Microsecond, 0, pattern))
		advance()
	}
	want := ctl.PathCount(63)
	if want < 2 {
		t.Fatal("burst 1 did not open paths")
	}
	// Congestion controlled: all paths report medium latency -> H->M saves.
	for _, id := range openPathIDs(ctl, 63) {
		ctl.HandleAck(eng, ack(5*sim.Microsecond, id, pattern))
	}
	if ctl.Stats.PatternsSaved == 0 || ctl.DB().Size() == 0 {
		t.Fatal("solution not saved on H->M")
	}
	// Relax to L: paths close.
	for i := 0; i < 40 && ctl.PathCount(63) > 1; i++ {
		for _, id := range openPathIDs(ctl, 63) {
			ctl.HandleAck(eng, ack(100*sim.Nanosecond, id, nil))
		}
		advance()
	}
	if ctl.PathCount(63) != 1 {
		t.Fatalf("paths did not close between bursts: %d", ctl.PathCount(63))
	}
	// Burst 2: same pattern. One high ACK must restore the full solution.
	ctl.HandleAck(eng, ack(100*sim.Microsecond, 0, pattern))
	if got := ctl.PathCount(63); got != want {
		t.Fatalf("reuse restored %d paths, want %d", got, want)
	}
	if ctl.Stats.ReuseApplications == 0 || ctl.Stats.PatternsReused == 0 {
		t.Fatal("reuse stats not recorded")
	}
}

// A plain DRB controller must not reuse: burst 2 should re-open gradually.
func TestNonPredictiveDoesNotReuse(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := DRBConfig()
	cfg.OpenInterval = 0
	ctl := New(0, topo, eng, cfg, sim.NewRNG(3))
	if ctl.DB() != nil {
		t.Fatal("DRB has a solution DB")
	}
	ctl.HandleAck(eng, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
		MSPIndex: 0, PathLatency: 100 * sim.Microsecond,
		Contending: []network.FlowKey{{Src: 0, Dst: 63}}})
	if ctl.Stats.ReuseApplications != 0 {
		t.Fatal("DRB reused a solution")
	}
}

// FR-DRB: no ACKs within the watchdog window while packets are outstanding
// must trigger path opening.
func TestWatchdogFastResponse(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := FRDRBConfig()
	cfg.OpenInterval = 0
	ctl := New(0, topo, eng, cfg, sim.NewRNG(3))
	pkt := &network.Packet{Type: network.DataPacket, Src: 0, Dst: 63}
	eng.Schedule(0, func(e *sim.Engine) { ctl.PrepareInjection(e, pkt) })
	// The watchdog re-arms while packets stay outstanding, so run to a
	// horizon rather than draining the queue.
	eng.Run(sim.Millisecond)
	if ctl.Stats.WatchdogFirings == 0 {
		t.Fatal("watchdog never fired")
	}
	if ctl.PathCount(63) < 2 {
		t.Fatal("watchdog did not open paths")
	}
	// ACK arrival must disarm the watchdog when nothing is outstanding.
	ctl.HandleAck(eng, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0, MSPIndex: 0, PathLatency: 100})
	fired := ctl.Stats.WatchdogFirings
	eng.RunAll()
	if ctl.Stats.WatchdogFirings != fired {
		t.Fatal("watchdog fired with no outstanding packets")
	}
}

func TestPrepareInjectionSetsWaypoints(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := DRBConfig()
	cfg.OpenInterval = 0
	ctl := New(0, topo, eng, cfg, sim.NewRNG(3))
	// Open paths first.
	for i := 0; i < 6; i++ {
		ctl.HandleAck(eng, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
			MSPIndex: 0, PathLatency: 100 * sim.Microsecond})
		eng.Schedule(eng.Now()+sim.Microsecond, func(*sim.Engine) {})
		eng.RunAll()
	}
	sawWaypoints := false
	for i := 0; i < 50; i++ {
		pkt := &network.Packet{Type: network.DataPacket, Src: 0, Dst: 63}
		ctl.PrepareInjection(eng, pkt)
		if len(pkt.Waypoints) > 0 {
			sawWaypoints = true
			if pkt.MSPIndex == 0 {
				t.Fatal("waypointed packet carries direct-path MSP index")
			}
		}
	}
	if !sawWaypoints {
		t.Fatal("no packet ever used an alternative path")
	}
}

func TestRouterBasedPredictiveAckTriggersHigh(t *testing.T) {
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := DRBConfig()
	cfg.OpenInterval = 0
	ctl := New(0, topo, eng, cfg, sim.NewRNG(3))
	// Predictive ACK (MSPIndex = -1) signals congestion without latency.
	ctl.HandleAck(eng, &network.Packet{Type: network.AckPacket, Src: 63, Dst: 0,
		MSPIndex: -1, Predictive: true, PathLatency: 50 * sim.Microsecond,
		Contending: []network.FlowKey{{Src: 0, Dst: 63}, {Src: 5, Dst: 63}}})
	if ctl.PathCount(63) < 2 {
		t.Fatal("router-based predictive ACK did not open paths")
	}
	if ctl.Stats.PredictiveAcks != 1 {
		t.Fatal("predictive ACK not counted")
	}
}

func TestAggregateStats(t *testing.T) {
	a := &Controller{Stats: Stats{PathsOpened: 2, PatternsSaved: 1}}
	b := &Controller{Stats: Stats{PathsOpened: 3, ReuseApplications: 4}}
	got := AggregateStats([]*Controller{a, nil, b})
	if got.PathsOpened != 5 || got.PatternsSaved != 1 || got.ReuseApplications != 4 {
		t.Fatalf("aggregate = %+v", got)
	}
}
