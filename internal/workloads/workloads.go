// Package workloads generates logical traces that reproduce the published
// communication structure of the parallel applications the paper evaluates
// (§2.2, §4.8): NAS LU and MG (S/A/B classes), the LAMMPS molecular
// dynamics Chain and Comb benchmarks, the Parallel Ocean Program (POP) and
// Sweep3D.
//
// The paper drove its simulator from PAS2P-extracted traces of the real
// applications; those traces are not available, so each generator is built
// from the paper's own published statistics: the MPI call-mix breakdown
// (Table 2.1), the communication matrices and TDC (Figs 2.10-2.13), the
// phase structure and repetition counts (Table 2.2), and the standard
// communication structure of each code (wavefront sweeps for LU/Sweep3D,
// V-cycle halos for MG, spatial-decomposition halos plus Allreduce for
// LAMMPS, ocean halos plus heavy Allreduce for POP). PR-DRB keys off which
// flows contend and how often patterns repeat, which is exactly what these
// statistics pin down.
package workloads

import (
	"fmt"
	"math"

	"prdrb/internal/sim"
	"prdrb/internal/trace"
)

// Options tunes a generator. Zero values select per-workload defaults
// scaled for simulation affordability (the repetition *structure* is
// preserved; the repetition *count* is truncated).
type Options struct {
	// Ranks is the process count (must match the workload's decomposition:
	// perfect square for 2-D codes, cube-ish for MG/LAMMPS). 0 = 64.
	Ranks int
	// Iterations overrides the number of outer iterations/timesteps.
	Iterations int
	// MsgBytes overrides the halo message size.
	MsgBytes int
	// ComputeNs overrides the per-iteration compute time separating the
	// communication bursts (what makes the traffic bursty, §2.2.3).
	ComputeNs sim.Time
	// Collective selects the MPI_Allreduce lowering algorithm for the
	// workloads that let it vary (the ai-* generators):
	// "ring", "recursive-doubling", "halving-doubling" or "reduce-bcast".
	// Empty picks the communicator-size default.
	Collective string
}

func (o Options) ranks() int {
	if o.Ranks == 0 {
		return 64
	}
	return o.Ranks
}

func (o Options) iters(def int) int {
	if o.Iterations == 0 {
		return def
	}
	return o.Iterations
}

func (o Options) bytes(def int) int {
	if o.MsgBytes == 0 {
		return def
	}
	return o.MsgBytes
}

func (o Options) compute(def sim.Time) sim.Time {
	if o.ComputeNs == 0 {
		return def
	}
	return o.ComputeNs
}

// sqrtExact returns the integer square root of n, or an error if n is not
// a perfect square.
func sqrtExact(n int) (int, error) {
	s := int(math.Round(math.Sqrt(float64(n))))
	if s*s != n {
		return 0, fmt.Errorf("workloads: %d ranks is not a perfect square", n)
	}
	return s, nil
}

// grid2 addresses ranks on a w x w grid.
type grid2 struct{ w int }

func (g grid2) id(x, y int) int     { return y*g.w + x }
func (g grid2) at(r int) (x, y int) { return r % g.w, r / g.w }

// NASLU generates the LU pseudo-application (§4.8.2): a 2-D pipelined
// wavefront (SSOR) with blocking MPI_Send/MPI_Recv pairs sweeping the rank
// grid in both diagonal directions, plus the tiny Allreduce/Bcast residue
// Table 2.1 shows (LU: ~49.8% Send, ~49.5% Recv).
func NASLU(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	w, err := sqrtExact(n)
	if err != nil {
		return nil, err
	}
	g := grid2{w: w}
	iters := opt.iters(6)
	bytes := opt.bytes(2 * 1024)
	comp := opt.compute(40 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("nas-lu-%d", n), n)

	sweep := func(reverse bool) {
		// Wavefront: each rank receives from its upstream neighbours,
		// computes, then sends downstream. Diagonal order emerges from the
		// blocking dependencies; emission order per rank is recv, recv,
		// send, send.
		for r := 0; r < n; r++ {
			x, y := g.at(r)
			dx, dy := 1, 1
			if reverse {
				dx, dy = -1, -1
			}
			if ux := x - dx; ux >= 0 && ux < w {
				b.Recv(r, g.id(ux, y))
			}
			if uy := y - dy; uy >= 0 && uy < w {
				b.Recv(r, g.id(x, uy))
			}
			b.Compute(r, comp/4)
			if sx := x + dx; sx >= 0 && sx < w {
				b.Send(r, g.id(sx, y), bytes)
			}
			if sy := y + dy; sy >= 0 && sy < w {
				b.Send(r, g.id(x, sy), bytes)
			}
		}
	}
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		sweep(false) // lower-triangular sweep
		sweep(true)  // upper-triangular sweep
		if it%4 == 3 {
			b.Allreduce(64) // residual norm
		}
	}
	b.Bcast(0, 128)
	return b.Build(), nil
}

// MGClass selects the NAS MG problem class (§4.8.2 uses S, A and B).
type MGClass byte

// NAS MG classes.
const (
	MGClassS MGClass = 'S'
	MGClassA MGClass = 'A'
	MGClassB MGClass = 'B'
)

// NASMG generates the MG multigrid kernel: per V-cycle, halo exchanges in
// the 3 logical dimensions whose neighbour distance doubles at each coarser
// level (the "long- and short-distance communication" of §4.8.2), with
// Irecv/Send/Wait triplets (Table 2.1 MG: ~44% Send + ~44% Wait) and an
// Allreduce per cycle.
func NASMG(class MGClass, opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	w, err := sqrtExact(n)
	if err != nil {
		return nil, err
	}
	g := grid2{w: w}
	var iters, bytes int
	var levels int
	switch class {
	case MGClassS:
		iters, bytes, levels = opt.iters(4), opt.bytes(256), 2
	case MGClassA:
		iters, bytes, levels = opt.iters(5), opt.bytes(4*1024), 3
	case MGClassB:
		iters, bytes, levels = opt.iters(8), opt.bytes(8*1024), 3
	default:
		return nil, fmt.Errorf("workloads: unknown MG class %q", string(class))
	}
	comp := opt.compute(30 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("nas-mg-%c-%d", class, n), n)

	halo := func(dist, sz int) {
		// Exchange with the +/- neighbours at the given distance in both
		// grid dimensions (wrapped: MG uses periodic boundaries).
		for r := 0; r < n; r++ {
			x, y := g.at(r)
			peers := []int{
				g.id((x+dist)%w, y), g.id((x-dist+w*dist)%w, y),
				g.id(x, (y+dist)%w), g.id(x, (y-dist+w*dist)%w),
			}
			for _, p := range peers {
				if p == r {
					continue
				}
				b.IrecvQuiet(r, p)
			}
			for _, p := range peers {
				if p == r {
					continue
				}
				b.Send(r, p, sz)
			}
			for _, p := range peers {
				if p == r {
					continue
				}
				b.Wait(r)
			}
		}
	}
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		// V-cycle down (restriction): coarser level = doubled distance,
		// quartered message.
		for l := 0; l < levels; l++ {
			dist := 1 << l
			if dist >= w {
				break
			}
			sz := bytes >> (2 * l)
			if sz < 64 {
				sz = 64
			}
			halo(dist, sz)
		}
		// V-cycle up (prolongation), reversed.
		for l := levels - 1; l >= 0; l-- {
			dist := 1 << l
			if dist >= w {
				continue
			}
			sz := bytes >> (2 * l)
			if sz < 64 {
				sz = 64
			}
			halo(dist, sz)
		}
		b.Allreduce(64) // norm check
		if it%4 == 0 {
			b.Reduce(0, 64)
		}
	}
	b.Bcast(0, 128)
	return b.Build(), nil
}

// LammpsChain generates the LAMMPS Chain benchmark (Fig 2.10): 3-D
// spatial-decomposition halo exchanges giving an average TDC of ~7 per
// node (6 face neighbours + diagonal residue), with per-timestep
// Irecv/Send/Wait pairs (Table 2.1: ~43.6% Send + ~43.6% Wait) and an
// Allreduce every few steps (~10.8%).
func LammpsChain(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	w, err := sqrtExact(n)
	if err != nil {
		return nil, err
	}
	g := grid2{w: w}
	iters := opt.iters(10)
	bytes := opt.bytes(4 * 1024)
	comp := opt.compute(50 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("lammps-chain-%d", n), n)

	neighbors := func(r int) []int {
		x, y := g.at(r)
		// 4 faces + 2 diagonals + 1 long-range partner: TDC 7 (Fig 2.10's
		// diagonal band plus scattered off-diagonal communication).
		ps := []int{
			g.id((x+1)%w, y), g.id((x-1+w)%w, y),
			g.id(x, (y+1)%w), g.id(x, (y-1+w)%w),
			g.id((x+1)%w, (y+1)%w), g.id((x-1+w)%w, (y-1+w)%w),
			(r + n/2) % n,
		}
		out := ps[:0]
		for _, p := range ps {
			if p != r {
				out = append(out, p)
			}
		}
		return out
	}
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		for r := 0; r < n; r++ {
			for _, p := range neighbors(r) {
				b.IrecvQuiet(r, p)
			}
		}
		for r := 0; r < n; r++ {
			for _, p := range neighbors(r) {
				sz := bytes
				if p == (r+n/2)%n {
					sz = bytes / 4 // long-range partners move less data
				}
				b.Send(r, p, sz)
			}
		}
		for r := 0; r < n; r++ {
			for range neighbors(r) {
				b.Wait(r)
			}
		}
		// Thermodynamics + neighbour-list reductions: ~2 Allreduce per
		// step keeps the ~10.8% share of Table 2.1.
		b.Allreduce(128)
		b.Allreduce(64)
		if it%3 == 2 {
			b.Bcast(0, 256)
		}
	}
	return b.Build(), nil
}

// LammpsComb generates the LAMMPS Comb benchmark (Fig 2.11): phase 1 is a
// tight diagonal-band halo (nearest neighbours only, little to gain from
// routing, §2.2.6), phase 2 is pure Allreduce — the phase with weight >800
// the paper flags as the one worth optimizing.
func LammpsComb(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	w, err := sqrtExact(n)
	if err != nil {
		return nil, err
	}
	g := grid2{w: w}
	iters := opt.iters(10)
	bytes := opt.bytes(2 * 1024)
	comp := opt.compute(40 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("lammps-comb-%d", n), n)

	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		// Phase 1: diagonal-band halo.
		for r := 0; r < n; r++ {
			x, y := g.at(r)
			peers := []int{g.id((x+1)%w, y), g.id((x-1+w)%w, y), g.id(x, (y+1)%w), g.id(x, (y-1+w)%w)}
			for _, p := range peers {
				if p != r {
					b.IrecvQuiet(r, p)
				}
			}
			for _, p := range peers {
				if p != r {
					b.Send(r, p, bytes)
				}
			}
			for _, p := range peers {
				if p != r {
					b.Wait(r)
				}
			}
		}
		// Phase 2: the heavy collective phase (charge equilibration).
		for sub := 0; sub < 2; sub++ {
			b.Allreduce(512)
		}
	}
	return b.Build(), nil
}

// POP generates the Parallel Ocean Program (§4.8.4, Fig 2.13): 2-D ocean
// halo exchanges via Isend/Waitall (Table 2.1: 34.9% ISend + 34.9% Waitall)
// plus the ~30% MPI_Allreduce of the barotropic solver — several small
// Allreduces per step — and scattered long-distance flows (max TDC 11).
func POP(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	w, err := sqrtExact(n)
	if err != nil {
		return nil, err
	}
	if w%2 != 0 {
		return nil, fmt.Errorf("workloads: POP needs an even grid width, got %dx%d", w, w)
	}
	g := grid2{w: w}
	iters := opt.iters(12)
	bytes := opt.bytes(2 * 1024)
	comp := opt.compute(35 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("pop-%d", n), n)

	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		// Baroclinic halo: per-neighbour Isend over pre-posted (persistent)
		// receives, completed with Waitall — one Waitall per ISend, the
		// 34.9%/34.9% pairing of Table 2.1. Edge-colored even/odd phases
		// keep the per-exchange completion deadlock-free: both endpoints
		// of every grid edge handle that edge in the same phase.
		for dim := 0; dim < 2; dim++ {
			for phase := 0; phase < 2; phase++ {
				for r := 0; r < n; r++ {
					x, y := g.at(r)
					coord := x
					if dim == 1 {
						coord = y
					}
					dir := 1
					if coord%2 != phase {
						dir = -1
					}
					var p int
					if dim == 0 {
						p = g.id((x+dir+w)%w, y)
					} else {
						p = g.id(x, (y+dir+w)%w)
					}
					if p == r {
						continue
					}
					b.IrecvQuiet(r, p)
					b.Isend(r, p, bytes)
					b.Waitall(r)
				}
			}
		}
		// Scattered remote exchanges (the off-diagonal dots of Fig 2.13):
		// every 3rd step, ranks swap small fields with a set of distant
		// partners — land-mask neighbours and gather/scatter mates that
		// push POP's max TDC toward the paper's ~11. Each partner map is
		// an involution (r -> n-1-r, and XOR masks), so exchanges pair up
		// exactly.
		if it%3 == 1 {
			partner := func(r, variant int) int {
				switch variant {
				case 0:
					return n - 1 - r
				case 1:
					return r ^ (n / 2)
				case 2:
					return r ^ (n / 4)
				case 3:
					return r ^ (n/2 + n/8)
				default:
					return r ^ (n/2 + n/4)
				}
			}
			for variant := 0; variant < 5; variant++ {
				for r := 0; r < n; r++ {
					p := partner(r, variant)
					if p == r || p < 0 || p >= n {
						continue
					}
					b.IrecvQuiet(r, p)
					b.Isend(r, p, bytes/2)
					b.Waitall(r)
				}
			}
		}
		// Barotropic solver: several small Allreduces per step.
		for s := 0; s < 3; s++ {
			b.Allreduce(64)
		}
		if it%6 == 5 {
			b.Barrier()
		}
		if it%10 == 9 {
			b.Bcast(0, 128)
		}
	}
	return b.Build(), nil
}

// Sweep3D generates the SWEEP3D neutron-transport wavefront (Fig 2.12):
// blocking Send/Recv with the 4 grid neighbours only (TDC 4), swept from
// each of the four corners (octant pairs), with negligible collectives —
// the paper's example of an application that does NOT profit from routing
// optimization because everything is nearest-neighbour.
func Sweep3D(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	w, err := sqrtExact(n)
	if err != nil {
		return nil, err
	}
	g := grid2{w: w}
	iters := opt.iters(3)
	bytes := opt.bytes(1024)
	comp := opt.compute(25 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("sweep3d-%d", n), n)

	sweep := func(dx, dy int) {
		for r := 0; r < n; r++ {
			x, y := g.at(r)
			if ux := x - dx; ux >= 0 && ux < w {
				b.Recv(r, g.id(ux, y))
			}
			if uy := y - dy; uy >= 0 && uy < w {
				b.Recv(r, g.id(x, uy))
			}
			b.Compute(r, comp/8)
			if sx := x + dx; sx >= 0 && sx < w {
				b.Send(r, g.id(sx, y), bytes)
			}
			if sy := y + dy; sy >= 0 && sy < w {
				b.Send(r, g.id(x, sy), bytes)
			}
		}
	}
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		// 4 corner sweeps (octant pairs in the 2-D decomposition).
		sweep(1, 1)
		sweep(-1, 1)
		sweep(1, -1)
		sweep(-1, -1)
		if it%4 == 3 {
			b.Allreduce(64)
		}
	}
	b.Barrier()
	return b.Build(), nil
}

// NASFT generates the FT kernel (Table 2.2 lists classes A and B): a 3-D
// FFT whose dominant communication is the all-to-all transpose between
// pencil decompositions — one MPI_Alltoall per dimension swap per
// iteration, with the per-pair block shrinking as 1/ranks.
func NASFT(class byte, opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	var iters, totalBytes int
	switch class {
	case 'A':
		iters, totalBytes = opt.iters(4), opt.bytes(256*1024)
	case 'B':
		iters, totalBytes = opt.iters(6), opt.bytes(1024*1024)
	default:
		return nil, fmt.Errorf("workloads: unknown FT class %q", string(class))
	}
	perPair := totalBytes / n
	if perPair < 64 {
		perPair = 64
	}
	comp := opt.compute(60 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("nas-ft-%c-%d", class, n), n)
	// Initial distribution.
	b.Bcast(0, 512)
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		// Forward transpose, local FFT (compute), inverse transpose.
		b.Alltoall(perPair)
		for r := 0; r < n; r++ {
			b.Compute(r, comp/2)
		}
		b.Alltoall(perPair)
		// Checksum reduction each iteration.
		b.Allreduce(64)
	}
	return b.Build(), nil
}

// SMG2000 generates the semicoarsening multigrid solver (Table 2.2: 10
// phases, 4 relevant, weight 1200): like MG but coarsening one dimension
// at a time, so halo distances grow anisotropically — x doubles per level
// while y stays at 1 — producing the solver's characteristic mix of short
// and increasingly long-distance neighbour traffic.
func SMG2000(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	w, err := sqrtExact(n)
	if err != nil {
		return nil, err
	}
	g := grid2{w: w}
	iters := opt.iters(6)
	bytes := opt.bytes(2 * 1024)
	comp := opt.compute(35 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("smg2000-%d", n), n)

	halo := func(dx, dy, sz int) {
		for r := 0; r < n; r++ {
			x, y := g.at(r)
			var peers []int
			if dx > 0 {
				peers = append(peers, g.id((x+dx)%w, y), g.id((x-dx+w*dx)%w, y))
			}
			if dy > 0 {
				peers = append(peers, g.id(x, (y+dy)%w), g.id(x, (y-dy+w*dy)%w))
			}
			for _, p := range peers {
				if p != r {
					b.IrecvQuiet(r, p)
				}
			}
			for _, p := range peers {
				if p != r {
					b.Send(r, p, sz)
				}
			}
			for _, p := range peers {
				if p != r {
					b.Wait(r)
				}
			}
		}
	}
	for it := 0; it < iters; it++ {
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		// Semicoarsening V-cycle: x halo distance doubles per level, y
		// stays fine.
		for l := 0; ; l++ {
			dx := 1 << l
			if dx >= w {
				break
			}
			sz := bytes >> l
			if sz < 64 {
				sz = 64
			}
			halo(dx, 1, sz)
		}
		b.Allreduce(64)
	}
	b.Bcast(0, 128)
	return b.Build(), nil
}

// ByName builds a workload by its experiment identifier.
func ByName(name string, opt Options) (*trace.Trace, error) {
	switch name {
	case "nas-lu":
		return NASLU(opt)
	case "nas-mg-s":
		return NASMG(MGClassS, opt)
	case "nas-mg-a":
		return NASMG(MGClassA, opt)
	case "nas-mg-b":
		return NASMG(MGClassB, opt)
	case "nas-ft-a":
		return NASFT('A', opt)
	case "nas-ft-b":
		return NASFT('B', opt)
	case "smg2000":
		return SMG2000(opt)
	case "lammps-chain":
		return LammpsChain(opt)
	case "lammps-comb":
		return LammpsComb(opt)
	case "pop":
		return POP(opt)
	case "sweep3d":
		return Sweep3D(opt)
	case "ai-dp-allreduce":
		return AIDPAllreduce(opt)
	case "ai-pp-pipeline":
		return AIPPPipeline(opt)
	case "ai-dp-pp":
		return AIDPPP(opt)
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists the available workloads.
func Names() []string {
	return []string{"nas-lu", "nas-mg-s", "nas-mg-a", "nas-mg-b",
		"nas-ft-a", "nas-ft-b", "smg2000",
		"lammps-chain", "lammps-comb", "pop", "sweep3d",
		"ai-dp-allreduce", "ai-pp-pipeline", "ai-dp-pp"}
}
