package workloads

import (
	"testing"

	"prdrb/internal/network"
	"prdrb/internal/trace"
)

// The dp job must be Allreduce-dominated (bucketed gradient sync is the
// only communication), while the pure pipeline must be Send/Recv chains
// with a negligible collective residue.
func TestAICallMixShapes(t *testing.T) {
	dp, err := AIDPAllreduce(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := dp.CallShare(network.MPIAllreduce); s < 0.9 {
		t.Errorf("dp Allreduce share = %.3f, want > 0.9", s)
	}

	pp, err := AIPPPipeline(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := pp.CallShare(network.MPISend) + pp.CallShare(network.MPIRecv); s < 0.9 {
		t.Errorf("pp point-to-point share = %.3f, want > 0.9", s)
	}

	hy, err := AIDPPP(Options{})
	if err != nil {
		t.Fatal(err)
	}
	ar := hy.CallShare(network.MPIAllreduce)
	p2p := hy.CallShare(network.MPISend) + hy.CallShare(network.MPIRecv)
	if ar < 0.05 || p2p < 0.3 {
		t.Errorf("hybrid mix: allreduce %.3f p2p %.3f, want both present", ar, p2p)
	}
}

// Options.Collective must select the algorithm: ring and recursive
// doubling lower to different step counts, and an unknown name errors.
func TestAICollectiveSelection(t *testing.T) {
	ring, err := AIDPAllreduce(Options{Ranks: 16, Iterations: 1, Collective: "ring"})
	if err != nil {
		t.Fatal(err)
	}
	rd, err := AIDPAllreduce(Options{Ranks: 16, Iterations: 1, Collective: "recursive-doubling"})
	if err != nil {
		t.Fatal(err)
	}
	if ring.TotalEvents() <= rd.TotalEvents() {
		t.Errorf("ring events %d not > recursive-doubling events %d (2(n-1) vs log2 n rounds)",
			ring.TotalEvents(), rd.TotalEvents())
	}
	if ring.Name == rd.Name {
		t.Error("algorithm not reflected in the trace name")
	}
	if _, err := AIDPAllreduce(Options{Collective: "quantum"}); err == nil {
		t.Error("unknown collective algorithm accepted")
	}
	if _, err := AIDPPP(Options{Collective: "quantum"}); err == nil {
		t.Error("unknown collective algorithm accepted by the hybrid")
	}
}

// The dp job must work on non-power-of-two and non-square rank counts —
// the whole point of the ring fallback.
func TestAIDPNonPow2Ranks(t *testing.T) {
	for _, n := range []int{6, 12, 48} {
		tr, err := AIDPAllreduce(Options{Ranks: n, Iterations: 1})
		if err != nil {
			t.Fatalf("%d ranks: %v", n, err)
		}
		if tr.Ranks != n {
			t.Fatalf("%d ranks: trace has %d", n, tr.Ranks)
		}
		rep, _ := replayOn64(t, tr)
		if !rep.Finished() {
			t.Fatalf("%d ranks: replay did not finish", n)
		}
	}
}

// Decomposition constraints are rejected up front.
func TestAIRankValidation(t *testing.T) {
	if _, err := AIDPAllreduce(Options{Ranks: 1}); err == nil {
		t.Error("1-rank dp accepted")
	}
	if _, err := AIPPPipeline(Options{Ranks: 1}); err == nil {
		t.Error("1-stage pipeline accepted")
	}
	if _, err := AIDPPP(Options{Ranks: 6}); err == nil {
		t.Error("6 ranks accepted for a 4-stage hybrid")
	}
	if _, err := AIDPPP(Options{Ranks: 4}); err == nil {
		t.Error("single-replica hybrid accepted (dp group of 1)")
	}
}

// The hybrid's gradient traffic must stay inside each stage's dp group:
// stage-s ranks Allreduce only with other stage-s ranks.
func TestAIDPPPGroupIsolation(t *testing.T) {
	tr, err := AIDPPP(Options{Ranks: 16, Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With 16 ranks = 4 replicas x 4 stages, rank 1 is stage 1 of replica
	// 0; its group peers are ranks 5, 9, 13. Scan its large-Allreduce
	// sends (the 64-byte loss Allreduce spans the full communicator).
	for _, ev := range tr.Events[1] {
		if ev.MPIType != network.MPIAllreduce || ev.Bytes < 1024 {
			continue
		}
		if ev.Op == trace.OpSend || ev.Op == trace.OpIsend {
			if ev.Peer%aiStages != 1 {
				t.Fatalf("stage-1 rank sent gradients to rank %d (stage %d)", ev.Peer, ev.Peer%aiStages)
			}
		}
	}
}

// The pipeline must serialize through the stage chain: with near-zero
// compute, execution time is still bounded below by the microbatch
// message chain through all 64 stages.
func TestAIPipelineDependencyChain(t *testing.T) {
	tr, err := AIPPPipeline(Options{Iterations: 1, ComputeNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := replayOn64(t, tr)
	// 63 sequential 32KB hops to fill, plus drain: >> 100us at 2 Gbps.
	if rep.ExecutionTime() < 100*1000 {
		t.Fatalf("pipeline too fast (%v): stage chain not serialized", rep.ExecutionTime())
	}
}
