package workloads

import (
	"testing"

	"prdrb/internal/metrics"
	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
	"prdrb/internal/trace"
)

type detPolicy struct{}

func (detPolicy) Name() string { return "det" }
func (detPolicy) OutputPort(r *network.Router, pkt *network.Packet) int {
	if target, ok := pkt.CurrentTarget(); ok {
		return r.Net().Topo.NextHopToRouter(r.ID, target)
	}
	return r.Net().Topo.NextHop(r.ID, pkt.Dst)
}

func replayOn64(t *testing.T, tr *trace.Trace) (*trace.Replay, *network.Network) {
	t.Helper()
	topo := topology.NewMesh(8, 8)
	eng := sim.NewEngine()
	cfg := network.DefaultConfig()
	cfg.GenerateAcks = false
	col := metrics.NewCollector(64, 64, 0)
	net := network.MustNew(eng, topo, cfg, detPolicy{}, col)
	rep, err := trace.NewReplay(net, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep.Start(0)
	eng.RunAll()
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	return rep, net
}

// Every workload must build and replay to completion — no deadlocks, no
// mismatched sends/receives — on the default 64-rank decomposition.
func TestAllWorkloadsReplay(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			tr, err := ByName(name, Options{Iterations: 2})
			if err != nil {
				t.Fatal(err)
			}
			rep, net := replayOn64(t, tr)
			if !rep.Finished() {
				t.Fatal("not finished")
			}
			if rep.ExecutionTime() <= 0 {
				t.Fatal("no execution time")
			}
			if net.Collector.Throughput.AcceptedPkts == 0 {
				t.Fatal("workload moved no packets")
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("quake", Options{}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestNonSquareRanksRejected(t *testing.T) {
	if _, err := NASLU(Options{Ranks: 48}); err == nil {
		t.Fatal("48 ranks accepted for a square decomposition")
	}
}

func TestUnknownMGClass(t *testing.T) {
	if _, err := NASMG('Z', Options{}); err == nil {
		t.Fatal("unknown MG class accepted")
	}
}

// Table 2.1 shape: POP is ISend/Waitall dominated with a large Allreduce
// share; LU is blocking Send/Recv dominated; Sweep3D nearly pure
// Send/Recv; LAMMPS has the ~10% Allreduce signature.
func TestCallMixShapes(t *testing.T) {
	pop, err := POP(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := pop.CallShare(network.MPIIsend); s < 0.25 || s > 0.45 {
		t.Errorf("POP ISend share = %.3f, want ~0.35", s)
	}
	if s := pop.CallShare(network.MPIAllreduce); s < 0.18 || s > 0.40 {
		t.Errorf("POP Allreduce share = %.3f, want ~0.29", s)
	}
	if pop.CallShare(network.MPIRecv) != 0 {
		t.Error("POP should not use blocking MPI_Recv")
	}

	lu, err := NASLU(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := lu.CallShare(network.MPISend); s < 0.42 || s > 0.55 {
		t.Errorf("LU Send share = %.3f, want ~0.50", s)
	}
	if s := lu.CallShare(network.MPIRecv); s < 0.42 || s > 0.55 {
		t.Errorf("LU Recv share = %.3f, want ~0.50", s)
	}

	sw, err := Sweep3D(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := sw.CallShare(network.MPISend) + sw.CallShare(network.MPIRecv); s < 0.9 {
		t.Errorf("Sweep3D point-to-point share = %.3f, want > 0.9", s)
	}

	lc, err := LammpsChain(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := lc.CallShare(network.MPIAllreduce); s < 0.05 || s > 0.25 {
		t.Errorf("LAMMPS Chain Allreduce share = %.3f, want ~0.11", s)
	}
	if s := lc.CallShare(network.MPISend); s < 0.3 || s > 0.55 {
		t.Errorf("LAMMPS Chain Send share = %.3f, want ~0.44", s)
	}
}

func TestMGClassesScale(t *testing.T) {
	s, err := NASMG(MGClassS, Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NASMG(MGClassB, Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Class B moves much more data than class S.
	sb, bb := totalSendBytes(s), totalSendBytes(b)
	if bb < 4*sb {
		t.Fatalf("class B bytes %d not >> class S bytes %d", bb, sb)
	}
}

func totalSendBytes(tr *trace.Trace) int64 {
	var total int64
	for _, evs := range tr.Events {
		for _, ev := range evs {
			if ev.Op == trace.OpSend || ev.Op == trace.OpIsend {
				total += int64(ev.Bytes)
			}
		}
	}
	return total
}

func TestIterationsScaleEvents(t *testing.T) {
	a, _ := POP(Options{Iterations: 3})
	b, _ := POP(Options{Iterations: 9})
	if b.TotalEvents() < 2*a.TotalEvents() {
		t.Fatalf("iterations do not scale events: %d vs %d", a.TotalEvents(), b.TotalEvents())
	}
}

func TestSmallerRankCounts(t *testing.T) {
	for _, name := range []string{"nas-lu", "pop", "sweep3d", "lammps-comb"} {
		tr, err := ByName(name, Options{Ranks: 16, Iterations: 2})
		if err != nil {
			t.Fatalf("%s at 16 ranks: %v", name, err)
		}
		if tr.Ranks != 16 {
			t.Fatalf("%s ranks = %d", name, tr.Ranks)
		}
		rep, _ := replayOn64(t, tr)
		if !rep.Finished() {
			t.Fatalf("%s at 16 ranks did not finish", name)
		}
	}
}

// The LU wavefront must serialize along the diagonal: rank 63 (far corner)
// cannot finish its first sweep before a chain of at least 14 hops of
// messages reaches it.
func TestLUWavefrontDependency(t *testing.T) {
	tr, err := NASLU(Options{Iterations: 1, ComputeNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, _ := replayOn64(t, tr)
	// 14 sequential 2KB messages at 2 Gbps ~ 14 * 8.2us minimum.
	if rep.ExecutionTime() < 100*sim.Microsecond {
		t.Fatalf("LU wavefront too fast (%v): dependencies not serialized", rep.ExecutionTime())
	}
}

func TestNASFTAlltoallDominated(t *testing.T) {
	tr, err := NASFT('A', Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.CallShare(network.MPIAlltoall); s < 0.3 {
		t.Errorf("FT Alltoall share = %.3f, want dominant", s)
	}
	if _, err := NASFT('Z', Options{}); err == nil {
		t.Error("unknown FT class accepted")
	}
}

func TestSMG2000AnisotropicHalos(t *testing.T) {
	tr, err := SMG2000(Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// X-distance-4 partners must appear (semicoarsened level), and the
	// y halos stay at distance 1: rank 0 (corner (0,0) of the 8x8 grid)
	// must send to (4,0)=4 but never to (0,4)=32... SMG keeps y at 1, so
	// 0 talks to 8 (y+1) and 56 (y-1 wrapped) but not 32.
	sent := map[int]bool{}
	for _, ev := range tr.Events[0] {
		// Only the application's own halos: collective lowering (Allreduce
		// recursive doubling, Bcast trees) legitimately reaches any rank.
		switch ev.MPIType {
		case network.MPIAllreduce, network.MPIBcast, network.MPIReduce, network.MPIBarrier, network.MPIAlltoall:
			continue
		}
		if ev.Op == trace.OpSend || ev.Op == trace.OpIsend {
			sent[ev.Peer] = true
		}
	}
	if !sent[4] {
		t.Error("no x-distance-4 semicoarsened halo from rank 0")
	}
	if sent[32] {
		t.Error("unexpected y-distance-4 halo (coarsening should be x-only)")
	}
}
