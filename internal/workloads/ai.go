package workloads

import (
	"fmt"

	"prdrb/internal/collectives"
	"prdrb/internal/sim"
	"prdrb/internal/trace"
)

// AI-training communication generators. Distributed training is the
// dominant collective-heavy workload on modern interconnects, and its
// traffic is exactly the regime PR-DRB targets: the same large collective
// repeats every training step, so a policy that recognizes a contention
// pattern once and re-applies the stored solution should keep winning on
// every subsequent step. Three decompositions are modeled:
//
//   - ai-dp-allreduce: pure data parallelism — every step is backprop
//     compute interleaved with bucketed gradient Allreduce (the
//     gradient-bucketing overlap of DDP-style frameworks: the bucket for
//     the top layers reduces while the lower layers are still computing).
//   - ai-pp-pipeline: pure pipeline parallelism — microbatch activation
//     chains flow stage-to-stage forward, gradient chains flow backward
//     (GPipe schedule), almost no collectives.
//   - ai-dp-pp: the hybrid — dp replicas of a stages-deep pipeline;
//     activations move within a replica, gradients Allreduce across each
//     stage's replica group (an MPI sub-communicator per stage).
//
// Options mapping: MsgBytes is the per-bucket gradient size (dp) or the
// per-microbatch activation size (pp); Iterations is training steps;
// Collective picks the Allreduce algorithm (ring, recursive-doubling,
// halving-doubling, reduce-bcast).

// aiAllreduceAlg resolves the Allreduce algorithm for an n-rank
// communicator, honoring Options.Collective.
func (o Options) aiAllreduceAlg(n int) string {
	if o.Collective == "" {
		return collectives.DefaultAllreduce(n)
	}
	return o.Collective
}

// aiBuckets is the gradient bucket count per backprop pass: the model's
// layers are flushed top-down in this many Allreduce-sized chunks.
const aiBuckets = 4

// AIDPAllreduce generates a data-parallel training job: per step, a
// forward pass, then backprop emitting aiBuckets gradient buckets top
// layer first, each bucket's Allreduce issued as soon as its gradients
// exist — so bucket k's reduction is on the wire while buckets k+1..L are
// still computing. A scalar loss Allreduce closes every step and the
// initial parameter Bcast opens the job. Any rank count >= 2 works (data
// parallelism has no grid).
func AIDPAllreduce(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	if n < 2 {
		return nil, fmt.Errorf("workloads: data parallelism needs >= 2 ranks, got %d", n)
	}
	alg := opt.aiAllreduceAlg(n)
	iters := opt.iters(4)
	bucketBytes := opt.bytes(64 * 1024)
	comp := opt.compute(80 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("ai-dp-allreduce-%s-%d", alg, n), n)

	b.Bcast(0, 1024) // initial parameter broadcast from rank 0
	for it := 0; it < iters; it++ {
		// Forward pass: pure compute, no communication.
		for r := 0; r < n; r++ {
			b.Compute(r, comp)
		}
		// Backprop: top-down per-bucket compute, each bucket reduced as
		// soon as it is ready (the DDP bucketing overlap).
		for bucket := aiBuckets - 1; bucket >= 0; bucket-- {
			for r := 0; r < n; r++ {
				b.Compute(r, comp/aiBuckets)
			}
			if err := b.AllreduceAlg(alg, bucketBytes); err != nil {
				return nil, err
			}
		}
		// Scalar loss/grad-norm reduction before the optimizer step.
		if err := b.AllreduceAlg(alg, 64); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// aiMicrobatches is the pipeline depth of work in flight per step.
const aiMicrobatches = 8

// AIPPPipeline generates a pipeline-parallel training job: the n ranks
// are a linear chain of pipeline stages. Each step pushes aiMicrobatches
// activation messages forward through the chain (blocking Send/Recv, so
// the pipeline fill/drain bubbles emerge from the dependencies, exactly
// like the LU wavefront) and the matching gradient messages backward,
// with backward compute costed at twice forward. A Barrier models the
// synchronous optimizer step.
func AIPPPipeline(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	if n < 2 {
		return nil, fmt.Errorf("workloads: a pipeline needs >= 2 stages, got %d", n)
	}
	iters := opt.iters(3)
	bytes := opt.bytes(32 * 1024)
	comp := opt.compute(40 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("ai-pp-pipeline-%d", n), n)

	for it := 0; it < iters; it++ {
		// Forward: activations flow stage r -> r+1 per microbatch.
		for m := 0; m < aiMicrobatches; m++ {
			for r := 0; r < n; r++ {
				if r > 0 {
					b.Recv(r, r-1)
				}
				b.Compute(r, comp)
				if r < n-1 {
					b.Send(r, r+1, bytes)
				}
			}
		}
		// Backward: gradients flow stage r -> r-1, ~2x the compute.
		for m := 0; m < aiMicrobatches; m++ {
			for r := n - 1; r >= 0; r-- {
				if r < n-1 {
					b.Recv(r, r+1)
				}
				b.Compute(r, 2*comp)
				if r > 0 {
					b.Send(r, r-1, bytes)
				}
			}
		}
		b.Barrier() // synchronous optimizer step
	}
	return b.Build(), nil
}

// aiStages is the pipeline depth of the hybrid decomposition.
const aiStages = 4

// AIDPPP generates the hybrid data+pipeline job: ranks factor into
// n/aiStages pipeline replicas of aiStages stages each (rank = d*stages+s,
// so a replica occupies consecutive ranks). Per step, every replica runs
// the microbatch forward/backward chains concurrently, then each stage's
// dp group — an MPI sub-communicator spanning the replicas — Allreduces
// its shard of the gradients, and a tiny full-communicator Allreduce
// agrees on the loss. Requires ranks divisible by 4 with >= 2 replicas.
func AIDPPP(opt Options) (*trace.Trace, error) {
	n := opt.ranks()
	dp := n / aiStages
	if n%aiStages != 0 || dp < 2 {
		return nil, fmt.Errorf("workloads: hybrid dp+pp needs ranks divisible by %d with >= 2 replicas, got %d", aiStages, n)
	}
	iters := opt.iters(3)
	bytes := opt.bytes(32 * 1024)
	comp := opt.compute(40 * sim.Microsecond)
	b := trace.NewBuilder(fmt.Sprintf("ai-dp-pp-%dx%d", dp, aiStages), n)

	rank := func(d, s int) int { return d*aiStages + s }
	for it := 0; it < iters; it++ {
		// All replicas pipeline their microbatches concurrently.
		for m := 0; m < aiMicrobatches/2; m++ {
			for d := 0; d < dp; d++ {
				for s := 0; s < aiStages; s++ {
					r := rank(d, s)
					if s > 0 {
						b.Recv(r, rank(d, s-1))
					}
					b.Compute(r, comp)
					if s < aiStages-1 {
						b.Send(r, rank(d, s+1), bytes)
					}
				}
			}
		}
		for m := 0; m < aiMicrobatches/2; m++ {
			for d := 0; d < dp; d++ {
				for s := aiStages - 1; s >= 0; s-- {
					r := rank(d, s)
					if s < aiStages-1 {
						b.Recv(r, rank(d, s+1))
					}
					b.Compute(r, 2*comp)
					if s > 0 {
						b.Send(r, rank(d, s-1), bytes)
					}
				}
			}
		}
		// Gradient sync: each stage's shard reduces across its dp group.
		alg := opt.aiAllreduceAlg(dp)
		for s := 0; s < aiStages; s++ {
			group := make([]int, dp)
			for d := 0; d < dp; d++ {
				group[d] = rank(d, s)
			}
			if err := b.AllreduceGroup(group, alg, opt.bytes(64*1024)); err != nil {
				return nil, err
			}
		}
		// Scalar loss agreement over the full communicator.
		b.Allreduce(64)
	}
	return b.Build(), nil
}
