package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace: the trace parser must never panic on arbitrary input, and
// any trace it accepts must serialize and re-parse identically.
func FuzzReadTrace(f *testing.F) {
	b := NewBuilder("seed", 4)
	b.Compute(0, 100)
	b.Send(0, 1, 2048)
	b.Recv(1, 0)
	b.Allreduce(64)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("prdrb-trace 1\nranks 2\nrank 0\nc 5\n")
	f.Add("")
	f.Add("prdrb-trace 1\nranks 999999999\n")

	f.Fuzz(func(t *testing.T, src string) {
		tr, err := ReadTrace(strings.NewReader(src))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("accepted trace does not serialize: %v", err)
		}
		tr2, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if tr2.Ranks != tr.Ranks || tr2.TotalEvents() != tr.TotalEvents() {
			t.Fatal("unstable trace round trip")
		}
	})
}
