package trace

import (
	"bytes"
	"os"
	"testing"
)

// TestLoweringGolden pins the byte-exact collective lowerings. The golden
// was generated with the hard-coded pre-library lowerings; the delegates
// into internal/collectives must reproduce them exactly — same per-rank
// event order, same sizes, same MPI tags — so every committed workload
// golden downstream stays stable.
//
// The non-power-of-two section deliberately omits Allreduce/Barrier: their
// fallback changed from reduce+bcast through rank 0 to the ring algorithm
// (see TestAllreduceNonPow2Ring for the replacement's contract).
func TestLoweringGolden(t *testing.T) {
	var buf bytes.Buffer
	b8 := NewBuilder("lowering-pin-8", 8)
	b8.Bcast(2, 512)
	b8.Reduce(1, 256)
	b8.Allreduce(4096)
	b8.Barrier()
	b8.Alltoall(128)
	if err := WriteTrace(&buf, b8.Build()); err != nil {
		t.Fatal(err)
	}
	b12 := NewBuilder("lowering-pin-12", 12)
	b12.Bcast(3, 512)
	b12.Reduce(0, 256)
	b12.Alltoall(128)
	if err := WriteTrace(&buf, b12.Build()); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("testdata/lowering.golden")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("collective lowerings drifted from the pre-refactor golden (%d vs %d bytes)",
			buf.Len(), len(want))
	}
}
