package trace

import (
	"testing"

	"prdrb/internal/metrics"
	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

type detPolicy struct{}

func (detPolicy) Name() string { return "det" }
func (detPolicy) OutputPort(r *network.Router, pkt *network.Packet) int {
	if target, ok := pkt.CurrentTarget(); ok {
		return r.Net().Topo.NextHopToRouter(r.ID, target)
	}
	return r.Net().Topo.NextHop(r.ID, pkt.Dst)
}

func newNet(t *testing.T, terminalsWanted int) *network.Network {
	t.Helper()
	var topo topology.Topology
	switch {
	case terminalsWanted <= 16:
		topo = topology.NewMesh(4, 4)
	case terminalsWanted <= 64:
		topo = topology.NewMesh(8, 8)
	default:
		t.Fatalf("test wants %d terminals", terminalsWanted)
	}
	eng := sim.NewEngine()
	cfg := network.DefaultConfig()
	cfg.GenerateAcks = false
	col := metrics.NewCollector(topo.NumTerminals(), topo.NumRouters(), 0)
	return network.MustNew(eng, topo, cfg, detPolicy{}, col)
}

func runReplay(t *testing.T, net *network.Network, tr *Trace) *Replay {
	t.Helper()
	rep, err := NewReplay(net, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep.Start(0)
	net.Eng.RunAll()
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestPingPong(t *testing.T) {
	b := NewBuilder("pingpong", 2)
	b.Send(0, 1, 4096)
	b.Recv(1, 0)
	b.Send(1, 0, 4096)
	b.Recv(0, 1)
	net := newNet(t, 2)
	rep := runReplay(t, net, b.Build())
	if !rep.Finished() {
		t.Fatal("replay not finished")
	}
	if rep.ExecutionTime() <= 0 {
		t.Fatal("zero execution time")
	}
}

func TestComputeDelaysExecution(t *testing.T) {
	mk := func(compute sim.Time) sim.Time {
		b := NewBuilder("c", 2)
		b.Compute(0, compute)
		b.Send(0, 1, 1024)
		b.Recv(1, 0)
		net := newNet(t, 2)
		rep, err := NewReplay(net, b.Build(), nil)
		if err != nil {
			t.Fatal(err)
		}
		rep.Start(0)
		net.Eng.RunAll()
		if err := rep.Err(); err != nil {
			t.Fatal(err)
		}
		return rep.ExecutionTime()
	}
	short, long := mk(0), mk(500*sim.Microsecond)
	if long < short+500*sim.Microsecond {
		t.Fatalf("compute not reflected: short=%v long=%v", short, long)
	}
}

func TestBlockingSendWaitsForDelivery(t *testing.T) {
	// Rank 0 sends a large message then records its local finish time; a
	// blocking send must not finish before the message could physically
	// transit the network.
	b := NewBuilder("rendezvous", 2)
	b.Send(0, 1, 64*1024)
	b.Recv(1, 0)
	net := newNet(t, 2)
	rep := runReplay(t, net, b.Build())
	// 64 KiB at 2 Gbps is 262 us of serialization at the source link; the
	// final packet's header may cut through a few us early.
	if rep.ExecutionTime() < 250*sim.Microsecond {
		t.Fatalf("blocking send finished in %v, faster than the wire allows", rep.ExecutionTime())
	}
}

func TestIsendOverlap(t *testing.T) {
	// A bidirectional exchange overlapped with Isend/Irecv completes in
	// about one transfer time (the two directions use distinct link
	// halves); the sequential version needs two.
	mkSequential := func() sim.Time {
		b := NewBuilder("seq", 2)
		b.Send(0, 1, 32*1024)
		b.Recv(1, 0)
		b.Send(1, 0, 32*1024)
		b.Recv(0, 1)
		net := newNet(t, 2)
		return runReplay(t, net, b.Build()).ExecutionTime()
	}
	mkOverlap := func() sim.Time {
		b := NewBuilder("ovl", 2)
		b.Sendrecv(0, 1, 1, 32*1024)
		b.Sendrecv(1, 0, 0, 32*1024)
		net := newNet(t, 2)
		return runReplay(t, net, b.Build()).ExecutionTime()
	}
	seq, ovl := mkSequential(), mkOverlap()
	if float64(ovl) > 0.7*float64(seq) {
		t.Fatalf("no overlap benefit: sequential=%v overlapped=%v", seq, ovl)
	}
}

func TestOutOfOrderArrivalBuffered(t *testing.T) {
	// Rank 1 receives from 2 first, then from 0, while 0's message is sent
	// first — eager buffering must hold 0's message until its Recv posts.
	b := NewBuilder("ooo", 3)
	b.Send(0, 1, 1024)
	b.Compute(2, 200*sim.Microsecond)
	b.Send(2, 1, 1024)
	b.Recv(1, 2)
	b.Recv(1, 0)
	net := newNet(t, 3)
	rep := runReplay(t, net, b.Build())
	if !rep.Finished() {
		t.Fatal("out-of-order matching deadlocked")
	}
}

func TestWaitRetiresOldestFirst(t *testing.T) {
	b := NewBuilder("wait-order", 2)
	b.Irecv(1, 0)
	b.Irecv(1, 0)
	b.Wait(1)
	b.Wait(1)
	b.Send(0, 1, 1024)
	b.Send(0, 1, 1024)
	net := newNet(t, 2)
	rep := runReplay(t, net, b.Build())
	if !rep.Finished() {
		t.Fatal("irecv/wait pairing failed")
	}
}

func TestBcastReachesEveryRank(t *testing.T) {
	const ranks = 8
	b := NewBuilder("bcast", ranks)
	b.Bcast(2, 2048)
	net := newNet(t, ranks)
	rep := runReplay(t, net, b.Build())
	if !rep.Finished() {
		t.Fatal("bcast deadlocked")
	}
	// Binomial tree over 8 ranks: 7 point-to-point transfers.
	if got := net.Collector.Latency.TotalPackets(); got < 7*2 { // 2048B = 2 pkts
		t.Fatalf("bcast moved only %d packets", got)
	}
}

func TestReduceCompletes(t *testing.T) {
	b := NewBuilder("reduce", 8)
	b.Reduce(0, 1024)
	net := newNet(t, 8)
	if !runReplay(t, net, b.Build()).Finished() {
		t.Fatal("reduce deadlocked")
	}
}

func TestAllreducePowerOfTwo(t *testing.T) {
	b := NewBuilder("allreduce", 8)
	b.Allreduce(1024)
	net := newNet(t, 8)
	if !runReplay(t, net, b.Build()).Finished() {
		t.Fatal("recursive-doubling allreduce deadlocked")
	}
	// log2(8)=3 rounds x 8 ranks, one message each direction = 24 messages.
	if got := net.Collector.Throughput.AcceptedPkts; got != 24 {
		t.Fatalf("allreduce moved %d packets, want 24", got)
	}
}

func TestAllreduceNonPowerOfTwo(t *testing.T) {
	b := NewBuilder("allreduce6", 6)
	b.Allreduce(512)
	net := newNet(t, 6)
	if !runReplay(t, net, b.Build()).Finished() {
		t.Fatal("fallback allreduce deadlocked")
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	// Rank 0 computes 300us before the barrier; every rank's finish time
	// must be >= that.
	const ranks = 4
	b := NewBuilder("barrier", ranks)
	b.Compute(0, 300*sim.Microsecond)
	b.Barrier()
	net := newNet(t, ranks)
	rep := runReplay(t, net, b.Build())
	if rep.ExecutionTime() < 300*sim.Microsecond {
		t.Fatalf("barrier did not hold ranks: %v", rep.ExecutionTime())
	}
}

func TestSendrecvRing(t *testing.T) {
	const ranks = 8
	b := NewBuilder("ring", ranks)
	for r := 0; r < ranks; r++ {
		b.Sendrecv(r, (r+1)%ranks, (r+ranks-1)%ranks, 4096)
	}
	net := newNet(t, ranks)
	if !runReplay(t, net, b.Build()).Finished() {
		t.Fatal("sendrecv ring deadlocked")
	}
}

func TestCallMixAccounting(t *testing.T) {
	b := NewBuilder("mix", 4)
	b.Send(0, 1, 10)
	b.Recv(1, 0)
	b.Allreduce(100)
	tr := b.Build()
	if tr.CallMix[network.MPISend] != 1 || tr.CallMix[network.MPIRecv] != 1 {
		t.Fatalf("p2p call mix wrong: %v", tr.CallMix)
	}
	if tr.CallMix[network.MPIAllreduce] != 4 {
		t.Fatalf("allreduce counted %d, want 4 (one per rank)", tr.CallMix[network.MPIAllreduce])
	}
	if share := tr.CallShare(network.MPIAllreduce); share != 4.0/6.0 {
		t.Fatalf("CallShare = %v", share)
	}
}

func TestDeadlockDetection(t *testing.T) {
	b := NewBuilder("deadlock", 2)
	b.Recv(0, 1) // nobody ever sends
	net := newNet(t, 2)
	rep, err := NewReplay(net, b.Build(), nil)
	if err != nil {
		t.Fatal(err)
	}
	rep.Start(0)
	net.Eng.RunAll()
	if rep.Err() == nil {
		t.Fatal("stuck rank not reported")
	}
}

func TestCustomMapping(t *testing.T) {
	b := NewBuilder("mapped", 2)
	b.Send(0, 1, 1024)
	b.Recv(1, 0)
	net := newNet(t, 16)
	// Place rank 0 on node 5 and rank 1 on node 10.
	rep, err := NewReplay(net, b.Build(), []topology.NodeID{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	rep.Start(0)
	net.Eng.RunAll()
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if net.Collector.Latency.Dst(10) == 0 {
		t.Fatal("mapped traffic did not reach node 10")
	}
}

func TestMappingValidation(t *testing.T) {
	b := NewBuilder("x", 2)
	b.Send(0, 1, 1)
	b.Recv(1, 0)
	net := newNet(t, 16)
	if _, err := NewReplay(net, b.Build(), []topology.NodeID{1}); err == nil {
		t.Fatal("short mapping accepted")
	}
	big := NewBuilder("big", 2)
	big.Send(0, 1, 1)
	big.Recv(1, 0)
	small := newNet(t, 16)
	tr := big.Build()
	tr.Ranks = 100
	if _, err := NewReplay(small, tr, nil); err == nil {
		t.Fatal("oversized trace accepted")
	}
}

func TestBuilderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1-rank builder accepted")
		}
	}()
	NewBuilder("bad", 1)
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{
		OpCompute: "compute", OpSend: "send", OpIsend: "isend",
		OpRecv: "recv", OpIrecv: "irecv", OpWait: "wait", OpWaitall: "waitall",
	} {
		if op.String() != want {
			t.Errorf("Op(%d).String() = %q", op, op.String())
		}
	}
}

func TestAlltoallPowerOfTwo(t *testing.T) {
	const ranks = 8
	b := NewBuilder("a2a", ranks)
	b.Alltoall(512)
	net := newNet(t, ranks)
	if !runReplay(t, net, b.Build()).Finished() {
		t.Fatal("pairwise alltoall deadlocked")
	}
	// n-1 steps, each rank sends one block: 8*7 = 56 messages.
	if got := net.Collector.Throughput.AcceptedPkts; got != 56 {
		t.Fatalf("alltoall moved %d packets, want 56", got)
	}
}

func TestAlltoallNonPowerOfTwo(t *testing.T) {
	b := NewBuilder("a2a6", 6)
	b.Alltoall(256)
	net := newNet(t, 6)
	if !runReplay(t, net, b.Build()).Finished() {
		t.Fatal("ring alltoall deadlocked")
	}
	if got := net.Collector.Throughput.AcceptedPkts; got != 30 {
		t.Fatalf("alltoall moved %d packets, want 30", got)
	}
}
