package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	b := NewBuilder("roundtrip", 4)
	b.Compute(0, 1000)
	b.Send(0, 1, 2048)
	b.Recv(1, 0)
	b.Isend(2, 3, 512)
	b.Irecv(3, 2)
	b.Wait(3)
	b.Waitall(2)
	b.Allreduce(64)
	tr := b.Build()

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Ranks != tr.Ranks {
		t.Fatalf("header mismatch: %q/%d", got.Name, got.Ranks)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatal("events did not round trip")
	}
	if !reflect.DeepEqual(got.CallMix, tr.CallMix) {
		t.Fatalf("call mix mismatch: %v vs %v", got.CallMix, tr.CallMix)
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"",                                       // no header
		"prdrb-trace 1\nrank 0\nc 5\n",           // rank before ranks
		"prdrb-trace 1\nranks 2\nc 5\n",          // event before rank
		"prdrb-trace 1\nranks 2\nrank 9\n",       // rank out of range
		"prdrb-trace 1\nranks 1\n",               // implausible rank count
		"prdrb-trace 1\nranks 2\nbogus 1\n",      // unknown directive
		"prdrb-trace 1\nranks 2\nrank 0\ns 1\n",  // short fields
		"prdrb-trace 1\nranks 2\nrank 0\nc xx\n", // bad int
		"prdrb-trace 1\n",                        // missing ranks entirely
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestReadTraceSkipsComments(t *testing.T) {
	src := "# comment\nprdrb-trace 1\nname x\nranks 2\n\n# more\nrank 0\nc 100\nrank 1\nc 50\n"
	tr, err := ReadTrace(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events[0]) != 1 || tr.Events[0][0].Dur != 100 {
		t.Fatalf("events: %+v", tr.Events)
	}
}

// Serialized workload traces must replay identically to the originals.
func TestSerializedWorkloadReplays(t *testing.T) {
	b := NewBuilder("wl", 8)
	for step := 0; step < 3; step++ {
		for r := 0; r < 8; r++ {
			b.Compute(r, 1000)
			b.Sendrecv(r, (r+1)%8, (r+7)%8, 4096)
		}
		b.Allreduce(128)
	}
	orig := b.Build()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, orig); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n1 := newNet(t, 8)
	r1 := runReplay(t, n1, orig)
	n2 := newNet(t, 8)
	r2 := runReplay(t, n2, loaded)
	if r1.ExecutionTime() != r2.ExecutionTime() {
		t.Fatalf("exec time diverged: %v vs %v", r1.ExecutionTime(), r2.ExecutionTime())
	}
}
