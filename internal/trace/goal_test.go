package trace

import (
	"bytes"
	"strings"
	"testing"

	"prdrb/internal/collectives"
	"prdrb/internal/network"
)

// buildTestGoal assembles a small hand-written graph: rank 0 computes,
// then sends two overlapping messages to ranks 1 and 2; each peer
// receives, computes, and answers; rank 0's final calc requires both
// answers.
func buildTestGoal() *Goal {
	return &Goal{
		Name:  "goal-test",
		Ranks: 3,
		Progs: [][]GoalNode{
			{
				{Op: GoalCalc, Dur: 100},
				{Op: GoalSend, Peer: 1, Bytes: 2048, Tag: 0, Requires: []int{0}},
				{Op: GoalSend, Peer: 2, Bytes: 2048, Tag: 0, Requires: []int{0}},
				{Op: GoalRecv, Peer: 1, Tag: 0, Requires: []int{0}},
				{Op: GoalRecv, Peer: 2, Tag: 0, Requires: []int{0}},
				{Op: GoalCalc, Dur: 50, Requires: []int{3, 4}},
			},
			{
				{Op: GoalRecv, Peer: 0, Tag: 0},
				{Op: GoalCalc, Dur: 200, Requires: []int{0}},
				{Op: GoalSend, Peer: 0, Bytes: 512, Tag: 0, Requires: []int{1}},
			},
			{
				{Op: GoalRecv, Peer: 0, Tag: 0},
				{Op: GoalCalc, Dur: 200, Requires: []int{0}},
				{Op: GoalSend, Peer: 0, Bytes: 512, Tag: 0, Requires: []int{1}},
			},
		},
	}
}

func runGoalReplay(t *testing.T, net *network.Network, g *Goal) *GoalReplay {
	t.Helper()
	rep, err := NewGoalReplay(net, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep.Start(0)
	net.Eng.RunAll()
	return rep
}

func TestGoalRoundTrip(t *testing.T) {
	g := buildTestGoal()
	var buf bytes.Buffer
	if err := WriteGOAL(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGOAL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip parse: %v\n%s", err, buf.String())
	}
	var buf2 bytes.Buffer
	if err := WriteGOAL(&buf2, g2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatalf("round trip not byte-identical:\n--- first\n%s--- second\n%s", buf.String(), buf2.String())
	}
	if g2.Name != g.Name || g2.Ranks != g.Ranks || g2.TotalNodes() != g.TotalNodes() {
		t.Fatal("round trip changed the graph shape")
	}
}

func TestGoalReplayHonorsDependencies(t *testing.T) {
	g := buildTestGoal()
	rep := runGoalReplay(t, newNet(t, 3), g)
	if !rep.Finished() {
		t.Fatalf("goal replay did not finish: %v", rep.Err())
	}
	// The graph's critical path is calc(100) -> send -> peer calc(200) ->
	// reply -> final calc(50): execution time must exceed the pure compute
	// chain (network latency comes on top).
	if rep.ExecutionTime() <= 350 {
		t.Fatalf("execution time %d does not cover the critical path", rep.ExecutionTime())
	}
}

// TestGoalReplayOverlap pins the point of the graph format: two transfers
// that a sequential trace would serialize (send; recv) overlap when their
// nodes share dependencies, so the graph finishes faster.
func TestGoalReplayOverlap(t *testing.T) {
	const bytes = 1 << 16
	seq := &Goal{
		Name:  "seq",
		Ranks: 2,
		Progs: [][]GoalNode{
			{
				{Op: GoalSend, Peer: 1, Bytes: bytes, Tag: 0},
				{Op: GoalRecv, Peer: 1, Tag: 0, Requires: []int{0}}, // serialized
			},
			{
				{Op: GoalRecv, Peer: 0, Tag: 0},
				{Op: GoalSend, Peer: 0, Bytes: bytes, Tag: 0, Requires: []int{0}},
			},
		},
	}
	par := &Goal{
		Name:  "par",
		Ranks: 2,
		Progs: [][]GoalNode{
			{
				{Op: GoalSend, Peer: 1, Bytes: bytes, Tag: 0},
				{Op: GoalRecv, Peer: 1, Tag: 0}, // independent: overlaps
			},
			{
				{Op: GoalRecv, Peer: 0, Tag: 0},
				{Op: GoalSend, Peer: 0, Bytes: bytes, Tag: 0}, // independent
			},
		},
	}
	repSeq := runGoalReplay(t, newNet(t, 2), seq)
	repPar := runGoalReplay(t, newNet(t, 2), par)
	if !repSeq.Finished() || !repPar.Finished() {
		t.Fatalf("replays did not finish: %v / %v", repSeq.Err(), repPar.Err())
	}
	if repPar.ExecutionTime() >= repSeq.ExecutionTime() {
		t.Fatalf("overlapped graph (%dns) not faster than serialized graph (%dns)",
			repPar.ExecutionTime(), repSeq.ExecutionTime())
	}
}

// TestGoalFromTraceReplay converts lowered collective traces into graphs
// and replays both: the graph must drain, and since the trace's only
// orderings are the ones GoalFromTrace encodes as edges, the graph's
// execution time must not exceed the sequential replay's.
func TestGoalFromTraceReplay(t *testing.T) {
	for _, n := range []int{6, 8} {
		b := NewBuilder("conv", n)
		b.Compute(0, 500)
		if err := b.AllreduceAlg(collectives.AlgRing, 4096); err != nil {
			t.Fatal(err)
		}
		b.Bcast(0, 1024)
		b.Alltoall(128)
		tr := b.Build()

		g, err := GoalFromTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if g.Ranks != tr.Ranks {
			t.Fatalf("rank count changed: %d -> %d", tr.Ranks, g.Ranks)
		}
		trRep := runReplay(t, newNet(t, n), tr)
		if !trRep.Finished() {
			t.Fatal("trace replay deadlocked")
		}
		gRep := runGoalReplay(t, newNet(t, n), g)
		if !gRep.Finished() {
			t.Fatalf("goal replay deadlocked: %v", gRep.Err())
		}
		if gRep.ExecutionTime() > trRep.ExecutionTime() {
			t.Fatalf("n=%d: goal replay (%dns) slower than sequential trace replay (%dns)",
				n, gRep.ExecutionTime(), trRep.ExecutionTime())
		}
	}
}

// TestGoalFromTraceDeterministic pins that conversion is a pure function:
// two conversions of the same trace serialize identically.
func TestGoalFromTraceDeterministic(t *testing.T) {
	b := NewBuilder("det", 8)
	b.Allreduce(2048)
	tr := b.Build()
	var a, c bytes.Buffer
	g1, err := GoalFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := GoalFromTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteGOAL(&a, g1); err != nil {
		t.Fatal(err)
	}
	if err := WriteGOAL(&c, g2); err != nil {
		t.Fatal(err)
	}
	if a.String() != c.String() {
		t.Fatal("GoalFromTrace is not deterministic")
	}
}

func TestReadGOALRejects(t *testing.T) {
	cases := map[string]string{
		"missing magic":    "ranks 2\n",
		"no ranks":         "prdrb-goal 1\nname x\n",
		"bad rank count":   "prdrb-goal 1\nranks 1\n",
		"huge rank count":  "prdrb-goal 1\nranks 9999999\n",
		"rank out of rng":  "prdrb-goal 1\nranks 2\nrank 5\n",
		"node before rank": "prdrb-goal 1\nranks 2\nl0: calc 5\n",
		"duplicate label":  "prdrb-goal 1\nranks 2\nrank 0\nl0: calc 5\nl0: calc 6\n",
		"dangling require": "prdrb-goal 1\nranks 2\nrank 0\nl0: calc 5\nl0 requires l9\n",
		"undeclared from":  "prdrb-goal 1\nranks 2\nrank 0\nl0: calc 5\nl9 requires l0\n",
		"self require":     "prdrb-goal 1\nranks 2\nrank 0\nl0: calc 5\nl0 requires l0\n",
		"cycle":            "prdrb-goal 1\nranks 2\nrank 0\nl0: calc 5\nl1: calc 5\nl0 requires l1\nl1 requires l0\n",
		"peer out of rng":  "prdrb-goal 1\nranks 2\nrank 0\nl0: send 8b to 7\n",
		"self message":     "prdrb-goal 1\nranks 2\nrank 0\nl0: send 8b to 0\n",
		"negative bytes":   "prdrb-goal 1\nranks 2\nrank 0\nl0: send -8b to 1\n",
		"bad op":           "prdrb-goal 1\nranks 2\nrank 0\nl0: frobnicate 5\n",
		"bad attr":         "prdrb-goal 1\nranks 2\nrank 0\nl0: send 8b to 1 color 3\n",
		"dangling attr":    "prdrb-goal 1\nranks 2\nrank 0\nl0: send 8b to 1 tag\n",
		"huge tag":         "prdrb-goal 1\nranks 2\nrank 0\nl0: send 8b to 1 tag 1073741824\n",
		"bad type":         "prdrb-goal 1\nranks 2\nrank 0\nl0: send 8b to 1 type 256\n",
		"negative calc":    "prdrb-goal 1\nranks 2\nrank 0\nl0: calc -5\n",
	}
	for name, src := range cases {
		if _, err := ReadGOAL(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestReadGOALForwardEdgeAndComments(t *testing.T) {
	src := `# comment
prdrb-goal 1
name fwd
ranks 2

rank 0
# requires may name a node declared later in the section
l1 requires l2
l1: send 64b to 1 tag 3 type 9
l2: calc 10
rank 1
l0: recv 64b from 0 tag 3 type 9
`
	g, err := ReadGOAL(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalNodes() != 3 {
		t.Fatalf("got %d nodes, want 3", g.TotalNodes())
	}
	send := g.Progs[0][0]
	if send.Op != GoalSend || send.Peer != 1 || send.Bytes != 64 || send.Tag != 3 || send.MPIType != 9 {
		t.Fatalf("send node parsed wrong: %+v", send)
	}
	if len(send.Requires) != 1 || send.Requires[0] != 1 {
		t.Fatalf("forward edge not resolved: %+v", send.Requires)
	}
	rep := runGoalReplay(t, newNet(t, 2), g)
	if !rep.Finished() {
		t.Fatalf("replay stuck: %v", rep.Err())
	}
}

// TestGoalReplayUnmatchedRecv pins the Err diagnostics for a graph that
// can never finish.
func TestGoalReplayUnmatchedRecv(t *testing.T) {
	g := &Goal{
		Name:  "stuck",
		Ranks: 2,
		Progs: [][]GoalNode{
			{{Op: GoalRecv, Peer: 1, Tag: 7}},
			{},
		},
	}
	rep := runGoalReplay(t, newNet(t, 2), g)
	if rep.Finished() {
		t.Fatal("unmatched recv finished")
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "unmatched recv") {
		t.Fatalf("want unmatched-recv diagnostic, got %v", err)
	}
}

func TestGoalValidateRejectsHandBuilt(t *testing.T) {
	bad := []*Goal{
		{Name: "ranks", Ranks: 1, Progs: [][]GoalNode{{}}},
		{Name: "progs", Ranks: 3, Progs: [][]GoalNode{{}, {}}},
		{Name: "dup-req", Ranks: 2, Progs: [][]GoalNode{
			{{Op: GoalCalc}, {Op: GoalCalc, Requires: []int{0, 0}}}, {}}},
		{Name: "neg-req", Ranks: 2, Progs: [][]GoalNode{
			{{Op: GoalCalc, Requires: []int{-1}}}, {}}},
		{Name: "bad-op", Ranks: 2, Progs: [][]GoalNode{{{Op: GoalOp(99)}}, {}}},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%s: validated", g.Name)
		}
	}
}

// FuzzReadGOAL: the GOAL parser must never panic, and any schedule it
// accepts must serialize canonically and re-parse to the same bytes.
func FuzzReadGOAL(f *testing.F) {
	b := NewBuilder("seed", 4)
	b.Compute(0, 100)
	b.Send(0, 1, 2048)
	b.Recv(1, 0)
	b.Allreduce(64)
	g, err := GoalFromTrace(b.Build())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGOAL(&buf, g); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("prdrb-goal 1\nranks 2\nrank 0\nl0: calc 5\n")
	f.Add("prdrb-goal 1\nranks 2\nrank 0\nl0: send 8b to 1 tag 2 type 9\nl1: recv 8b from 1\nl1 requires l0\n")
	f.Add("prdrb-goal 1\nranks 2\nrank 0\nl0: calc 5\nl1: calc 5\nl0 requires l1\nl1 requires l0\n")
	f.Add("prdrb-goal 1\nranks 999999999\n")
	f.Add("")

	f.Fuzz(func(t *testing.T, src string) {
		g, err := ReadGOAL(strings.NewReader(src))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteGOAL(&out, g); err != nil {
			t.Fatalf("accepted goal does not serialize: %v", err)
		}
		g2, err := ReadGOAL(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("canonical form rejected: %v\n%s", err, out.String())
		}
		var out2 bytes.Buffer
		if err := WriteGOAL(&out2, g2); err != nil {
			t.Fatal(err)
		}
		if out.String() != out2.String() {
			t.Fatalf("unstable goal round trip:\n--- first\n%s--- second\n%s", out.String(), out2.String())
		}
	})
}
