package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"prdrb/internal/sim"
)

// GOAL-style dependency-graph schedules. Where a Trace is a per-rank
// *sequential* program (implicit dependency from each event to the next),
// a Goal is a per-rank *graph*: send/recv/calc nodes with explicit
// `requires` edges, in the spirit of the GOAL language used by
// LogGOPSim-class simulators. A node fires as soon as every node it
// requires has completed, so independent operations overlap without the
// trace engine's posting-order bookkeeping, and schedules produced by
// external tools can be replayed directly.
//
// Format (line-oriented text, '#' comments):
//
//	prdrb-goal 1
//	name <schedule name>
//	ranks <N>
//	rank <r>                                 # starts rank r's node list
//	l<id>: calc <durNs>                      # local computation
//	l<id>: send <bytes>b to <peer> [tag <t>] [type <mpi>]
//	l<id>: recv <bytes>b from <peer> [tag <t>] [type <mpi>]
//	l<id> requires l<id2>                    # dependency edge (id2 -> id)
//
// Labels are arbitrary non-negative integers, unique within a rank.
// Messages match on (source rank, tag). The optional `type` attribute
// carries the §3.3.1 MPI_type the node was lowered from, so packets stay
// attributable to logical collectives.

// GoalOp is a dependency-graph node kind.
type GoalOp uint8

// Goal node kinds.
const (
	GoalCalc GoalOp = iota
	GoalSend
	GoalRecv
)

func (o GoalOp) String() string {
	switch o {
	case GoalCalc:
		return "calc"
	case GoalSend:
		return "send"
	case GoalRecv:
		return "recv"
	}
	return "?"
}

// maxGoalTag bounds message-matching tags so they fit the wire MPI_seq
// field with room to spare.
const maxGoalTag = 1 << 30

// GoalNode is one node of a rank's dependency graph. Requires lists the
// indices (within the same rank's node slice) that must complete before
// this node fires.
type GoalNode struct {
	Op       GoalOp
	Peer     int      // counterpart rank (send/recv)
	Bytes    int      // message size (send/recv)
	Tag      int      // matching tag (send/recv)
	Dur      sim.Time // computation duration (calc)
	MPIType  uint8    // logical MPI call the node was lowered from
	Requires []int
}

// Goal is a complete per-rank dependency-graph schedule.
type Goal struct {
	Name  string
	Ranks int
	// Progs holds each rank's nodes; Requires entries index into the
	// owning rank's slice.
	Progs [][]GoalNode
}

// TotalNodes sums node counts across ranks.
func (g *Goal) TotalNodes() int {
	n := 0
	for _, prog := range g.Progs {
		n += len(prog)
	}
	return n
}

// Validate checks the structural invariants every consumer relies on:
// rank/peer ranges, tag and size sanity, in-range acyclic dependency
// edges. ReadGOAL validates automatically; call this on hand-built Goals
// before replaying them.
func (g *Goal) Validate() error {
	if g.Ranks < 2 || g.Ranks > 1<<20 {
		return fmt.Errorf("goal: implausible rank count %d", g.Ranks)
	}
	if len(g.Progs) != g.Ranks {
		return fmt.Errorf("goal: %d rank programs for %d ranks", len(g.Progs), g.Ranks)
	}
	for r, prog := range g.Progs {
		for id, nd := range prog {
			switch nd.Op {
			case GoalCalc:
				if nd.Dur < 0 {
					return fmt.Errorf("goal: rank %d node %d: negative calc duration", r, id)
				}
			case GoalSend, GoalRecv:
				if nd.Peer < 0 || nd.Peer >= g.Ranks {
					return fmt.Errorf("goal: rank %d node %d: peer %d out of range [0,%d)", r, id, nd.Peer, g.Ranks)
				}
				if nd.Peer == r {
					return fmt.Errorf("goal: rank %d node %d: self-message", r, id)
				}
				if nd.Bytes < 0 {
					return fmt.Errorf("goal: rank %d node %d: negative size", r, id)
				}
				if nd.Tag < 0 || nd.Tag >= maxGoalTag {
					return fmt.Errorf("goal: rank %d node %d: tag %d out of range", r, id, nd.Tag)
				}
			default:
				return fmt.Errorf("goal: rank %d node %d: unknown op %d", r, id, nd.Op)
			}
			seen := make(map[int]bool, len(nd.Requires))
			for _, dep := range nd.Requires {
				if dep < 0 || dep >= len(prog) {
					return fmt.Errorf("goal: rank %d node %d: requires dangling node %d", r, id, dep)
				}
				if dep == id {
					return fmt.Errorf("goal: rank %d node %d: requires itself", r, id)
				}
				if seen[dep] {
					return fmt.Errorf("goal: rank %d node %d: duplicate requires %d", r, id, dep)
				}
				seen[dep] = true
			}
		}
		if err := checkAcyclic(prog); err != nil {
			return fmt.Errorf("goal: rank %d: %w", r, err)
		}
	}
	return nil
}

// checkAcyclic runs Kahn's algorithm over one rank's dependency graph.
func checkAcyclic(prog []GoalNode) error {
	indeg := make([]int, len(prog))
	dependents := make([][]int, len(prog))
	for id, nd := range prog {
		indeg[id] = len(nd.Requires)
		for _, dep := range nd.Requires {
			dependents[dep] = append(dependents[dep], id)
		}
	}
	queue := make([]int, 0, len(prog))
	for id := range prog {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	done := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		done++
		for _, d := range dependents[id] {
			indeg[d]--
			if indeg[d] == 0 {
				queue = append(queue, d)
			}
		}
	}
	if done != len(prog) {
		return fmt.Errorf("dependency cycle (%d of %d nodes unreachable)", len(prog)-done, len(prog))
	}
	return nil
}

const goalMagic = "prdrb-goal 1"

// WriteGOAL serializes g in canonical form: each rank's nodes in index
// order labeled l0..l(k-1), followed by that rank's requires lines.
func WriteGOAL(w io.Writer, g *Goal) error {
	if err := g.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, goalMagic)
	fmt.Fprintf(bw, "name %s\n", g.Name)
	fmt.Fprintf(bw, "ranks %d\n", g.Ranks)
	for r, prog := range g.Progs {
		if len(prog) == 0 {
			continue
		}
		fmt.Fprintf(bw, "rank %d\n", r)
		for id, nd := range prog {
			switch nd.Op {
			case GoalCalc:
				fmt.Fprintf(bw, "l%d: calc %d\n", id, int64(nd.Dur))
			case GoalSend:
				fmt.Fprintf(bw, "l%d: send %db to %d", id, nd.Bytes, nd.Peer)
				writeGoalAttrs(bw, &nd)
			case GoalRecv:
				fmt.Fprintf(bw, "l%d: recv %db from %d", id, nd.Bytes, nd.Peer)
				writeGoalAttrs(bw, &nd)
			}
		}
		for id, nd := range prog {
			for _, dep := range nd.Requires {
				fmt.Fprintf(bw, "l%d requires l%d\n", id, dep)
			}
		}
	}
	return bw.Flush()
}

func writeGoalAttrs(bw *bufio.Writer, nd *GoalNode) {
	if nd.Tag != 0 {
		fmt.Fprintf(bw, " tag %d", nd.Tag)
	}
	if nd.MPIType != 0 {
		fmt.Fprintf(bw, " type %d", nd.MPIType)
	}
	bw.WriteByte('\n')
}

// goalEdge is an unresolved requires line (labels, not indices).
type goalEdge struct {
	rank     int
	from, to int // `l<from> requires l<to>`
	lineNo   int
}

// ReadGOAL parses and validates a serialized dependency-graph schedule.
// Rejected inputs include duplicate or dangling labels, out-of-range
// ranks and peers, self-messages, and dependency cycles.
func ReadGOAL(r io.Reader) (*Goal, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("goal: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	line, ok := next()
	if !ok || line != goalMagic {
		return nil, fail("missing %q header", goalMagic)
	}
	g := &Goal{}
	cur := -1
	// labels maps each rank's declared labels to node indices.
	var labels []map[int]int
	var edges []goalEdge

	parseLabel := func(tok string) (int, error) {
		if !strings.HasPrefix(tok, "l") {
			return 0, fail("bad label %q (want l<id>)", tok)
		}
		v, err := strconv.Atoi(tok[1:])
		if err != nil || v < 0 {
			return 0, fail("bad label %q", tok)
		}
		return v, nil
	}

	for {
		line, ok := next()
		if !ok {
			break
		}
		// Directive lines.
		word, rest, _ := strings.Cut(line, " ")
		switch word {
		case "name":
			g.Name = rest
			continue
		case "ranks":
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil {
				return nil, fail("bad rank count %q", rest)
			}
			if v < 2 || v > 1<<20 {
				return nil, fail("implausible rank count %d", v)
			}
			g.Ranks = int(v)
			g.Progs = make([][]GoalNode, g.Ranks)
			labels = make([]map[int]int, g.Ranks)
			continue
		case "rank":
			if g.Progs == nil {
				return nil, fail("'rank' before 'ranks'")
			}
			v, err := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			if err != nil || v < 0 || int(v) >= g.Ranks {
				return nil, fail("rank %q out of range", rest)
			}
			cur = int(v)
			if labels[cur] == nil {
				labels[cur] = make(map[int]int)
			}
			continue
		}

		if cur < 0 {
			return nil, fail("node line before any 'rank' line")
		}

		// `l<a> requires l<b>` — resolved after the whole file is read, so
		// edges may name nodes declared later in the rank's section.
		if fields := strings.Fields(line); len(fields) == 3 && fields[1] == "requires" {
			from, err := parseLabel(fields[0])
			if err != nil {
				return nil, err
			}
			to, err := parseLabel(fields[2])
			if err != nil {
				return nil, err
			}
			edges = append(edges, goalEdge{rank: cur, from: from, to: to, lineNo: lineNo})
			continue
		}

		// `l<id>: <op> ...`
		head, body, found := strings.Cut(line, ":")
		if !found {
			return nil, fail("unparseable line %q", line)
		}
		label, err := parseLabel(strings.TrimSpace(head))
		if err != nil {
			return nil, err
		}
		if _, dup := labels[cur][label]; dup {
			return nil, fail("duplicate label l%d in rank %d", label, cur)
		}
		nd, err := parseGoalNode(strings.Fields(body), fail)
		if err != nil {
			return nil, err
		}
		labels[cur][label] = len(g.Progs[cur])
		g.Progs[cur] = append(g.Progs[cur], nd)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.Ranks == 0 {
		return nil, fmt.Errorf("goal: no 'ranks' directive")
	}

	// Resolve dependency edges label -> index.
	for _, e := range edges {
		from, ok := labels[e.rank][e.from]
		if !ok {
			return nil, fmt.Errorf("goal: line %d: requires on undeclared node l%d", e.lineNo, e.from)
		}
		to, ok := labels[e.rank][e.to]
		if !ok {
			return nil, fmt.Errorf("goal: line %d: requires dangling node l%d", e.lineNo, e.to)
		}
		g.Progs[e.rank][from].Requires = append(g.Progs[e.rank][from].Requires, to)
	}
	// Canonicalize edge order so parse→write round trips are stable no
	// matter how the input interleaved its requires lines.
	for _, prog := range g.Progs {
		for id := range prog {
			sort.Ints(prog[id].Requires)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// parseGoalNode parses the body of a node line (after "l<id>:").
func parseGoalNode(fields []string, fail func(string, ...any) error) (GoalNode, error) {
	var nd GoalNode
	if len(fields) == 0 {
		return nd, fail("empty node body")
	}
	num := func(s string) (int64, error) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return 0, fail("bad integer %q", s)
		}
		return v, nil
	}
	switch fields[0] {
	case "calc":
		if len(fields) != 2 {
			return nd, fail("calc wants one duration field")
		}
		v, err := num(fields[1])
		if err != nil {
			return nd, err
		}
		nd.Op = GoalCalc
		nd.Dur = sim.Time(v)
		return nd, nil
	case "send", "recv":
		// send <bytes>b to <peer> / recv <bytes>b from <peer>
		prep := "to"
		nd.Op = GoalSend
		if fields[0] == "recv" {
			prep = "from"
			nd.Op = GoalRecv
		}
		if len(fields) < 4 || !strings.HasSuffix(fields[1], "b") || fields[2] != prep {
			return nd, fail("want '%s <bytes>b %s <peer>'", fields[0], prep)
		}
		bytes, err := num(strings.TrimSuffix(fields[1], "b"))
		if err != nil {
			return nd, err
		}
		peer, err := num(fields[3])
		if err != nil {
			return nd, err
		}
		nd.Bytes = int(bytes)
		nd.Peer = int(peer)
		rest := fields[4:]
		for len(rest) > 0 {
			if len(rest) < 2 {
				return nd, fail("dangling attribute %q", rest[0])
			}
			v, err := num(rest[1])
			if err != nil {
				return nd, err
			}
			switch rest[0] {
			case "tag":
				nd.Tag = int(v)
			case "type":
				if v < 0 || v > 255 {
					return nd, fail("mpi type %d out of range", v)
				}
				nd.MPIType = uint8(v)
			default:
				return nd, fail("unknown attribute %q", rest[0])
			}
			rest = rest[2:]
		}
		return nd, nil
	}
	return nd, fail("unknown node op %q", fields[0])
}

// GoalFromTrace converts a sequential trace into an equivalent dependency
// graph. Each rank's program is walked once with a frontier set — the
// nodes the next operation must require. Blocking operations replace the
// frontier; nonblocking sends/receives hang off it without joining it
// (later operations overlap with the transfer) until Wait/Waitall merges
// them back in. Message-matching tags are per-(source,destination)
// sequence numbers, preserving the trace engine's posting-order matching.
func GoalFromTrace(tr *Trace) (*Goal, error) {
	g := &Goal{Name: tr.Name, Ranks: tr.Ranks, Progs: make([][]GoalNode, tr.Ranks)}
	type pair struct{ src, dst int }
	sendTag := make(map[pair]int)
	recvTag := make(map[pair]int)
	for r, evs := range tr.Events {
		frontier := []int{}
		outstanding := []int{}
		add := func(nd GoalNode) int {
			nd.Requires = append([]int(nil), frontier...)
			g.Progs[r] = append(g.Progs[r], nd)
			return len(g.Progs[r]) - 1
		}
		nextTag := func(m map[pair]int, p pair) (int, error) {
			t := m[p]
			if t >= maxGoalTag {
				return 0, fmt.Errorf("goal: rank %d: tag space exhausted for pair %d->%d", r, p.src, p.dst)
			}
			m[p] = t + 1
			return t, nil
		}
		for pc, ev := range evs {
			switch ev.Op {
			case OpCompute:
				id := add(GoalNode{Op: GoalCalc, Dur: ev.Dur, MPIType: ev.MPIType})
				frontier = []int{id}
			case OpSend, OpIsend:
				tag, err := nextTag(sendTag, pair{r, ev.Peer})
				if err != nil {
					return nil, err
				}
				id := add(GoalNode{Op: GoalSend, Peer: ev.Peer, Bytes: ev.Bytes, Tag: tag, MPIType: ev.MPIType})
				if ev.Op == OpSend {
					frontier = []int{id}
				} else {
					outstanding = append(outstanding, id)
				}
			case OpRecv, OpIrecv:
				tag, err := nextTag(recvTag, pair{ev.Peer, r})
				if err != nil {
					return nil, err
				}
				id := add(GoalNode{Op: GoalRecv, Peer: ev.Peer, Tag: tag, MPIType: ev.MPIType})
				if ev.Op == OpRecv {
					frontier = []int{id}
				} else {
					outstanding = append(outstanding, id)
				}
			case OpWait:
				if len(outstanding) > 0 {
					frontier = append(frontier, outstanding[0])
					outstanding = outstanding[1:]
				}
			case OpWaitall:
				frontier = append(frontier, outstanding...)
				outstanding = outstanding[:0]
			default:
				return nil, fmt.Errorf("goal: rank %d pc %d: cannot convert op %v", r, pc, ev.Op)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
