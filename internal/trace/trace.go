// Package trace implements the logical-trace machinery of the paper's
// application-aware evaluation (§4.7, Fig 4.19): an MPI-style event
// vocabulary, a builder that workload generators use to emit per-rank
// traces (with collectives lowered onto point-to-point algorithms), and a
// replay engine that drives the network simulator from the traces — "each
// node in the network reads an input trace file and simulates the events"
// — preserving the logical dependencies between communication calls that
// physical traces lack (§5.1 "Original DRB Extended").
package trace

import (
	"fmt"

	"prdrb/internal/network"
	"prdrb/internal/sim"
)

// Op is a logical trace operation.
type Op uint8

// Trace operations. Collectives never appear in final traces — the Builder
// lowers them — but Compute and the point-to-point five are replayed
// directly.
const (
	OpCompute Op = iota
	OpSend       // blocking send: completes when the message is delivered
	OpIsend      // nonblocking send: registers a request
	OpRecv       // blocking receive from a specific rank
	OpIrecv      // nonblocking receive: registers a request
	OpWait       // waits for the oldest incomplete request
	OpWaitall    // waits for every outstanding request
)

func (o Op) String() string {
	switch o {
	case OpCompute:
		return "compute"
	case OpSend:
		return "send"
	case OpIsend:
		return "isend"
	case OpRecv:
		return "recv"
	case OpIrecv:
		return "irecv"
	case OpWait:
		return "wait"
	case OpWaitall:
		return "waitall"
	}
	return "?"
}

// Event is one per-rank trace entry.
type Event struct {
	Op    Op
	Peer  int      // counterpart rank for sends/receives
	Bytes int      // message size
	Dur   sim.Time // compute duration
	// MPIType tags the packet headers with the *logical* MPI call the event
	// was lowered from (e.g. a send belonging to an Allreduce), feeding the
	// §3.3.1 MPI_type field and the phase analysis.
	MPIType uint8
}

// Trace is a complete per-rank event program.
type Trace struct {
	Ranks  int
	Events [][]Event
	// CallMix counts the *logical* MPI calls the application made (Table
	// 2.1's breakdown), before collective lowering.
	CallMix map[uint8]int64
	// Name labels the workload.
	Name string
}

// TotalEvents sums the lowered event counts across ranks.
func (t *Trace) TotalEvents() int {
	n := 0
	for _, evs := range t.Events {
		n += len(evs)
	}
	return n
}

// CallShare returns the fraction of logical calls with the given MPI type —
// the percentages of Table 2.1.
func (t *Trace) CallShare(mpiType uint8) float64 {
	var total, match int64
	for ty, n := range t.CallMix {
		total += n
		if ty == mpiType {
			match += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(match) / float64(total)
}

// Builder assembles traces rank by rank and lowers collectives. All the
// workload generators in internal/workloads emit through it.
type Builder struct {
	tr *Trace
}

// NewBuilder starts a trace for the given number of ranks.
func NewBuilder(name string, ranks int) *Builder {
	if ranks < 2 {
		panic(fmt.Sprintf("trace: need >= 2 ranks, got %d", ranks))
	}
	return &Builder{tr: &Trace{
		Ranks:   ranks,
		Events:  make([][]Event, ranks),
		CallMix: make(map[uint8]int64),
		Name:    name,
	}}
}

// Build returns the finished trace.
func (b *Builder) Build() *Trace { return b.tr }

// Ranks returns the trace's rank count.
func (b *Builder) Ranks() int { return b.tr.Ranks }

func (b *Builder) push(rank int, ev Event) {
	if rank < 0 || rank >= b.tr.Ranks {
		panic(fmt.Sprintf("trace: rank %d out of range", rank))
	}
	b.tr.Events[rank] = append(b.tr.Events[rank], ev)
}

func (b *Builder) count(mpiType uint8, n int64) { b.tr.CallMix[mpiType] += n }

// Compute appends a local computation of duration d on rank.
func (b *Builder) Compute(rank int, d sim.Time) {
	if d <= 0 {
		return
	}
	b.push(rank, Event{Op: OpCompute, Dur: d})
}

// Send appends a blocking send (MPI_Send) from rank to to.
func (b *Builder) Send(rank, to, bytes int) {
	b.count(network.MPISend, 1)
	b.push(rank, Event{Op: OpSend, Peer: to, Bytes: bytes, MPIType: network.MPISend})
}

// Recv appends a blocking receive (MPI_Recv) on rank from from.
func (b *Builder) Recv(rank, from int) {
	b.count(network.MPIRecv, 1)
	b.push(rank, Event{Op: OpRecv, Peer: from, MPIType: network.MPIRecv})
}

// Isend appends a nonblocking send (MPI_Isend); pair with Wait/Waitall.
func (b *Builder) Isend(rank, to, bytes int) {
	b.count(network.MPIIsend, 1)
	b.push(rank, Event{Op: OpIsend, Peer: to, Bytes: bytes, MPIType: network.MPIIsend})
}

// Irecv appends a nonblocking receive (MPI_Irecv); pair with Wait/Waitall.
func (b *Builder) Irecv(rank, from int) {
	b.count(network.MPIIrecv, 1)
	b.push(rank, Event{Op: OpIrecv, Peer: from, MPIType: network.MPIIrecv})
}

// IrecvQuiet appends a nonblocking receive without counting a logical
// MPI_Irecv call: it models persistent pre-posted requests
// (MPI_Recv_init/MPI_Startall), which is why Table 2.1 shows 0% MPI_Irecv
// for POP, MG and LAMMPS while their Wait/Waitall counts match their sends.
func (b *Builder) IrecvQuiet(rank, from int) {
	b.push(rank, Event{Op: OpIrecv, Peer: from, MPIType: network.MPIIrecv})
}

// Wait appends MPI_Wait for the oldest incomplete request on rank.
func (b *Builder) Wait(rank int) {
	b.count(network.MPIWait, 1)
	b.push(rank, Event{Op: OpWait, MPIType: network.MPIWait})
}

// Waitall appends MPI_Waitall for every outstanding request on rank.
func (b *Builder) Waitall(rank int) {
	b.count(network.MPIWaitall, 1)
	b.push(rank, Event{Op: OpWaitall, MPIType: network.MPIWaitall})
}

// Sendrecv appends a combined exchange (MPI_Sendrecv) lowered onto
// Isend+Irecv+Waitall so the two directions overlap.
func (b *Builder) Sendrecv(rank, to, from, bytes int) {
	b.count(network.MPISendrecv, 1)
	b.push(rank, Event{Op: OpIsend, Peer: to, Bytes: bytes, MPIType: network.MPISendrecv})
	b.push(rank, Event{Op: OpIrecv, Peer: from, MPIType: network.MPISendrecv})
	b.push(rank, Event{Op: OpWaitall, MPIType: network.MPISendrecv})
}
