package trace

import (
	"fmt"
	"testing"

	"prdrb/internal/collectives"
	"prdrb/internal/network"
)

// TestCollectiveAlgorithmsReplay replays every selectable algorithm at a
// power-of-two and a non-power-of-two rank count: each schedule must drain
// without deadlock under the rendezvous replay semantics.
func TestCollectiveAlgorithmsReplay(t *testing.T) {
	for _, n := range []int{6, 8, 12, 16} {
		for _, alg := range collectives.AllreduceAlgorithms() {
			t.Run(fmt.Sprintf("allreduce-%s-n%d", alg, n), func(t *testing.T) {
				b := NewBuilder("coll", n)
				if err := b.AllreduceAlg(alg, 2048); err != nil {
					t.Fatal(err)
				}
				if !runReplay(t, newNet(t, n), b.Build()).Finished() {
					t.Fatal("deadlocked")
				}
			})
		}
		for _, alg := range collectives.AlltoallAlgorithms() {
			t.Run(fmt.Sprintf("alltoall-%s-n%d", alg, n), func(t *testing.T) {
				b := NewBuilder("coll", n)
				if err := b.AlltoallAlg(alg, 256); err != nil {
					t.Fatal(err)
				}
				if !runReplay(t, newNet(t, n), b.Build()).Finished() {
					t.Fatal("deadlocked")
				}
			})
		}
		t.Run(fmt.Sprintf("reduce-scatter+allgather-n%d", n), func(t *testing.T) {
			b := NewBuilder("coll", n)
			b.ReduceScatter(4096)
			b.Allgather(4096 / n)
			if !runReplay(t, newNet(t, n), b.Build()).Finished() {
				t.Fatal("deadlocked")
			}
			if b.Build().CallMix[network.MPIReduceScatter] != int64(n) {
				t.Error("reduce-scatter call not counted")
			}
			if b.Build().CallMix[network.MPIAllgather] != int64(n) {
				t.Error("allgather call not counted")
			}
		})
	}
}

// TestAllreduceNonPow2Ring pins the satellite fix: on a non-power-of-two
// communicator the default Allreduce now lowers to the ring, and the ring
// finishes a large reduction faster than the old reduce+bcast fallback —
// the root's serialized full-vector rounds are the bottleneck the ring
// removes.
func TestAllreduceNonPow2Ring(t *testing.T) {
	const n, bytes = 12, 1 << 20

	run := func(alg string) (exec int64) {
		b := NewBuilder("allreduce-"+alg, n)
		if err := b.AllreduceAlg(alg, bytes); err != nil {
			t.Fatal(err)
		}
		rep := runReplay(t, newNet(t, n), b.Build())
		return int64(rep.ExecutionTime())
	}

	// The default must be the ring (byte-identical to an explicit request).
	var def, ring bytesRecorder
	bDef := NewBuilder("x", n)
	bDef.Allreduce(bytes)
	if err := WriteTrace(&def, bDef.Build()); err != nil {
		t.Fatal(err)
	}
	bRing := NewBuilder("x", n)
	if err := bRing.AllreduceAlg(collectives.AlgRing, bytes); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&ring, bRing.Build()); err != nil {
		t.Fatal(err)
	}
	if string(def) != string(ring) {
		t.Fatal("non-pow2 Allreduce default is not the ring lowering")
	}

	ringExec := run(collectives.AlgRing)
	legacyExec := run(collectives.AlgReduceBcast)
	if ringExec >= legacyExec {
		t.Fatalf("ring allreduce (%dns) not faster than reduce+bcast (%dns) at n=%d, %dB",
			ringExec, legacyExec, n, bytes)
	}
	t.Logf("n=%d %dB allreduce: ring %dns vs reduce+bcast %dns (%.1fx)",
		n, bytes, ringExec, legacyExec, float64(legacyExec)/float64(ringExec))
}

type bytesRecorder []byte

func (b *bytesRecorder) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// TestAllreduceGroup checks subgroup lowering: only group members get
// events, peers stay inside the group, and the replay completes.
func TestAllreduceGroup(t *testing.T) {
	b := NewBuilder("group", 16)
	group := []int{1, 5, 9, 13}
	if err := b.AllreduceGroup(group, collectives.AlgRing, 1024); err != nil {
		t.Fatal(err)
	}
	tr := b.Build()
	inGroup := map[int]bool{}
	for _, r := range group {
		inGroup[r] = true
	}
	for r, evs := range tr.Events {
		if !inGroup[r] && len(evs) != 0 {
			t.Fatalf("rank %d outside the group got %d events", r, len(evs))
		}
		for _, ev := range evs {
			if ev.Op == OpSend || ev.Op == OpIsend || ev.Op == OpRecv || ev.Op == OpIrecv {
				if !inGroup[ev.Peer] {
					t.Fatalf("rank %d talks to non-member %d", r, ev.Peer)
				}
			}
		}
	}
	if !runReplay(t, newNet(t, 16), tr).Finished() {
		t.Fatal("group allreduce deadlocked")
	}
	if tr.CallMix[network.MPIAllreduce] != int64(len(group)) {
		t.Errorf("call mix counted %d, want %d", tr.CallMix[network.MPIAllreduce], len(group))
	}

	// Validation failures.
	if err := b.AllreduceGroup([]int{3}, collectives.AlgRing, 64); err == nil {
		t.Error("singleton group accepted")
	}
	if err := b.AllreduceGroup([]int{1, 1}, collectives.AlgRing, 64); err == nil {
		t.Error("duplicate ranks accepted")
	}
	if err := b.AllreduceGroup([]int{1, 99}, collectives.AlgRing, 64); err == nil {
		t.Error("out-of-range rank accepted")
	}
	if err := b.AllreduceGroup(group, "bogus", 64); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := b.AllreduceAlg("bogus", 64); err == nil {
		t.Error("unknown allreduce algorithm accepted")
	}
	if err := b.AlltoallAlg("bogus", 64); err == nil {
		t.Error("unknown alltoall algorithm accepted")
	}
}
