package trace

import "prdrb/internal/network"

// Collective lowering. The replay engine only understands point-to-point
// events, so collectives are expanded here onto the standard algorithms:
// binomial trees for Bcast/Reduce, recursive doubling for Allreduce on
// power-of-two communicators (Reduce+Bcast otherwise), and a 0-byte
// Allreduce for Barrier. All lowered events keep the collective's MPI type
// in their packets, so routers and the phase analysis still see "Allreduce
// traffic" (§3.3.1 MPI_type).
//
// Every lowering appends to ALL ranks, so callers must emit collectives at
// an SPMD phase boundary — which is how the workload generators are
// structured.

// isPow2 reports whether v is a power of two.
func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Bcast lowers MPI_Bcast from root over all ranks with a binomial tree.
func (b *Builder) Bcast(root, bytes int) {
	n := b.tr.Ranks
	b.count(network.MPIBcast, int64(n))
	b.bcastEvents(root, bytes, network.MPIBcast)
}

// bcastEvents emits binomial-tree events tagged with mpiType.
// Ranks are renumbered relative to root: vrank = (rank - root) mod n.
func (b *Builder) bcastEvents(root, bytes int, mpiType uint8) {
	n := b.tr.Ranks
	abs := func(v int) int { return (v + root) % n }
	// Highest power of two >= n.
	for mask := 1; mask < n; mask <<= 1 {
		for v := 0; v < n; v++ {
			if v&(mask-1) != 0 {
				continue // not yet reached in earlier rounds
			}
			peer := v | mask
			if peer >= n {
				continue
			}
			if v&mask == 0 {
				b.push(abs(v), Event{Op: OpSend, Peer: abs(peer), Bytes: bytes, MPIType: mpiType})
				b.push(abs(peer), Event{Op: OpRecv, Peer: abs(v), MPIType: mpiType})
			}
		}
	}
}

// Reduce lowers MPI_Reduce toward root with the mirror binomial tree.
func (b *Builder) Reduce(root, bytes int) {
	n := b.tr.Ranks
	b.count(network.MPIReduce, int64(n))
	b.reduceEvents(root, bytes, network.MPIReduce)
}

func (b *Builder) reduceEvents(root, bytes int, mpiType uint8) {
	n := b.tr.Ranks
	abs := func(v int) int { return (v + root) % n }
	// Largest round first: the reverse of the bcast tree.
	top := 1
	for top < n {
		top <<= 1
	}
	for mask := top >> 1; mask >= 1; mask >>= 1 {
		for v := 0; v < n; v++ {
			if v&(mask-1) != 0 {
				continue
			}
			peer := v | mask
			if peer >= n || v&mask != 0 {
				continue
			}
			b.push(abs(peer), Event{Op: OpSend, Peer: abs(v), Bytes: bytes, MPIType: mpiType})
			b.push(abs(v), Event{Op: OpRecv, Peer: abs(peer), MPIType: mpiType})
		}
	}
}

// Allreduce lowers MPI_Allreduce: recursive doubling on power-of-two
// communicators (log2(n) rounds of pairwise exchanges — the heavy
// all-to-all-ish load POP and LAMMPS put on the fabric), otherwise
// Reduce to 0 followed by Bcast.
func (b *Builder) Allreduce(bytes int) {
	n := b.tr.Ranks
	b.count(network.MPIAllreduce, int64(n))
	b.allreduceEvents(bytes, network.MPIAllreduce)
}

func (b *Builder) allreduceEvents(bytes int, mpiType uint8) {
	n := b.tr.Ranks
	if !isPow2(n) {
		b.reduceEvents(0, bytes, mpiType)
		b.bcastEvents(0, bytes, mpiType)
		return
	}
	for mask := 1; mask < n; mask <<= 1 {
		for v := 0; v < n; v++ {
			peer := v ^ mask
			// Symmetric exchange, overlapped in both directions.
			b.push(v, Event{Op: OpIsend, Peer: peer, Bytes: bytes, MPIType: mpiType})
			b.push(v, Event{Op: OpIrecv, Peer: peer, MPIType: mpiType})
			b.push(v, Event{Op: OpWaitall, MPIType: mpiType})
		}
	}
}

// Barrier lowers MPI_Barrier as a zero-byte Allreduce.
func (b *Builder) Barrier() {
	n := b.tr.Ranks
	b.count(network.MPIBarrier, int64(n))
	b.allreduceEvents(0, network.MPIBarrier)
}

// Alltoall lowers MPI_Alltoall (the transpose step of FFT codes like NAS
// FT) with the pairwise-exchange algorithm: n-1 steps; at step s every
// rank exchanges its block with partner rank^s (power-of-two ranks) or
// (rank+s) mod n otherwise. bytesPerPair is the block each pair swaps.
func (b *Builder) Alltoall(bytesPerPair int) {
	n := b.tr.Ranks
	b.count(network.MPIAlltoall, int64(n))
	pow2 := isPow2(n)
	for s := 1; s < n; s++ {
		for r := 0; r < n; r++ {
			var peer int
			if pow2 {
				peer = r ^ s
			} else {
				peer = (r + s) % n
			}
			if peer == r {
				continue
			}
			b.push(r, Event{Op: OpIsend, Peer: peer, Bytes: bytesPerPair, MPIType: network.MPIAlltoall})
			b.push(r, Event{Op: OpIrecv, Peer: recvPeer(r, s, n, pow2), MPIType: network.MPIAlltoall})
			b.push(r, Event{Op: OpWaitall, MPIType: network.MPIAlltoall})
		}
	}
}

// recvPeer is the rank whose step-s send targets r: with XOR pairing it is
// r^s (symmetric); with ring shifts it is (r-s+n) mod n.
func recvPeer(r, s, n int, pow2 bool) int {
	if pow2 {
		return r ^ s
	}
	return (r - s + n) % n
}
