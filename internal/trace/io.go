package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"prdrb/internal/sim"
)

// Trace (de)serialization — the on-disk trace files of the paper's
// application-characterization framework (Fig 4.19: "a trace file is
// obtained from an application execution. Later, each node in the network
// will read an input trace file and simulate the events").
//
// Format (line-oriented text, '#' comments):
//
//	prdrb-trace 1
//	name <workload name>
//	ranks <N>
//	callmix <mpiType> <count>        # repeated
//	rank <r>                         # starts rank r's event list
//	c <durNs>                        # compute
//	s <peer> <bytes> <mpiType>       # blocking send
//	i <peer> <bytes> <mpiType>       # isend
//	r <peer> <mpiType>               # blocking recv
//	q <peer> <mpiType>               # irecv
//	w <mpiType>                      # wait
//	a <mpiType>                      # waitall

const traceMagic = "prdrb-trace 1"

// WriteTrace serializes tr.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, traceMagic)
	fmt.Fprintf(bw, "name %s\n", tr.Name)
	fmt.Fprintf(bw, "ranks %d\n", tr.Ranks)
	for ty := uint8(0); ty < 32; ty++ {
		if n := tr.CallMix[ty]; n > 0 {
			fmt.Fprintf(bw, "callmix %d %d\n", ty, n)
		}
	}
	for r, evs := range tr.Events {
		fmt.Fprintf(bw, "rank %d\n", r)
		for _, ev := range evs {
			switch ev.Op {
			case OpCompute:
				fmt.Fprintf(bw, "c %d\n", int64(ev.Dur))
			case OpSend:
				fmt.Fprintf(bw, "s %d %d %d\n", ev.Peer, ev.Bytes, ev.MPIType)
			case OpIsend:
				fmt.Fprintf(bw, "i %d %d %d\n", ev.Peer, ev.Bytes, ev.MPIType)
			case OpRecv:
				fmt.Fprintf(bw, "r %d %d\n", ev.Peer, ev.MPIType)
			case OpIrecv:
				fmt.Fprintf(bw, "q %d %d\n", ev.Peer, ev.MPIType)
			case OpWait:
				fmt.Fprintf(bw, "w %d\n", ev.MPIType)
			case OpWaitall:
				fmt.Fprintf(bw, "a %d\n", ev.MPIType)
			default:
				return fmt.Errorf("trace: cannot serialize op %v", ev.Op)
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses a serialized trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lineNo := 0
	next := func() (string, bool) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return line, true
		}
		return "", false
	}
	fail := func(format string, args ...any) error {
		return fmt.Errorf("trace: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	line, ok := next()
	if !ok || line != traceMagic {
		return nil, fail("missing %q header", traceMagic)
	}
	tr := &Trace{CallMix: make(map[uint8]int64)}
	cur := -1
	ints := func(fields []string, want int) ([]int64, error) {
		if len(fields) != want {
			return nil, fail("want %d fields, got %d", want, len(fields))
		}
		out := make([]int64, want)
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fail("bad integer %q", f)
			}
			out[i] = v
		}
		return out, nil
	}
	push := func(ev Event) error {
		if cur < 0 {
			return fail("event before any 'rank' line")
		}
		tr.Events[cur] = append(tr.Events[cur], ev)
		return nil
	}

	for {
		line, ok := next()
		if !ok {
			break
		}
		op, rest, _ := strings.Cut(line, " ")
		fields := strings.Fields(rest)
		switch op {
		case "name":
			tr.Name = rest
		case "ranks":
			v, err := ints(fields, 1)
			if err != nil {
				return nil, err
			}
			if v[0] < 2 || v[0] > 1<<20 {
				return nil, fail("implausible rank count %d", v[0])
			}
			tr.Ranks = int(v[0])
			tr.Events = make([][]Event, tr.Ranks)
		case "callmix":
			v, err := ints(fields, 2)
			if err != nil {
				return nil, err
			}
			tr.CallMix[uint8(v[0])] = v[1]
		case "rank":
			v, err := ints(fields, 1)
			if err != nil {
				return nil, err
			}
			if tr.Events == nil {
				return nil, fail("'rank' before 'ranks'")
			}
			if v[0] < 0 || int(v[0]) >= tr.Ranks {
				return nil, fail("rank %d out of range", v[0])
			}
			cur = int(v[0])
		case "c":
			v, err := ints(fields, 1)
			if err != nil {
				return nil, err
			}
			if err := push(Event{Op: OpCompute, Dur: sim.Time(v[0])}); err != nil {
				return nil, err
			}
		case "s", "i":
			v, err := ints(fields, 3)
			if err != nil {
				return nil, err
			}
			o := OpSend
			if op == "i" {
				o = OpIsend
			}
			if err := push(Event{Op: o, Peer: int(v[0]), Bytes: int(v[1]), MPIType: uint8(v[2])}); err != nil {
				return nil, err
			}
		case "r", "q":
			v, err := ints(fields, 2)
			if err != nil {
				return nil, err
			}
			o := OpRecv
			if op == "q" {
				o = OpIrecv
			}
			if err := push(Event{Op: o, Peer: int(v[0]), MPIType: uint8(v[1])}); err != nil {
				return nil, err
			}
		case "w", "a":
			v, err := ints(fields, 1)
			if err != nil {
				return nil, err
			}
			o := OpWait
			if op == "a" {
				o = OpWaitall
			}
			if err := push(Event{Op: o, MPIType: uint8(v[0])}); err != nil {
				return nil, err
			}
		default:
			return nil, fail("unknown directive %q", op)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr.Ranks == 0 {
		return nil, fmt.Errorf("trace: no 'ranks' directive")
	}
	return tr, nil
}
