package trace

import (
	"fmt"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

// GoalReplay drives the network from a dependency-graph schedule. It is
// the graph analogue of Replay: a node fires the moment every node it
// requires has completed — no program counter, no posting-order request
// queue — and sends keep the rendezvous semantics (a send node completes
// when its message is fully delivered), so execution time still reflects
// network latency end to end. Receives match arrivals by (source rank,
// tag), with out-of-order arrivals parked in an eager inbox.
type GoalReplay struct {
	Net  *network.Network
	Goal *Goal
	// Mapping maps rank -> terminal node; nil means identity placement.
	Mapping []topology.NodeID

	ranks     []*goalRankState
	nodeRank  map[topology.NodeID]int
	sendOwner map[uint64]goalSendRef

	startAt       sim.Time
	finishedCount int
	started       bool
}

type goalSendRef struct {
	rank int
	id   int
}

// goalKey matches messages to posted receives.
type goalKey struct {
	src, tag int
}

// goalRankState is one rank's dependency-firing state.
type goalRankState struct {
	rank  int
	nodes []GoalNode

	pending    []int   // unmet dependency count per node
	dependents [][]int // reverse edges
	done       []bool

	// posted queues fired-but-unmatched receives per (src,tag); inbox
	// counts arrived-but-unmatched messages (eager buffering).
	posted map[goalKey][]int
	inbox  map[goalKey]int

	remaining  int
	finished   bool
	finishedAt sim.Time
}

// NewGoalReplay prepares a replay of g over net. The schedule is
// validated; its rank count must not exceed the network's terminals.
func NewGoalReplay(net *network.Network, g *Goal, mapping []topology.NodeID) (*GoalReplay, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if g.Ranks > net.Topo.NumTerminals() {
		return nil, fmt.Errorf("goal: %d ranks exceed %d terminals", g.Ranks, net.Topo.NumTerminals())
	}
	if mapping != nil && len(mapping) != g.Ranks {
		return nil, fmt.Errorf("goal: mapping has %d entries for %d ranks", len(mapping), g.Ranks)
	}
	r := &GoalReplay{
		Net:       net,
		Goal:      g,
		Mapping:   mapping,
		nodeRank:  make(map[topology.NodeID]int, g.Ranks),
		sendOwner: make(map[uint64]goalSendRef),
	}
	r.ranks = make([]*goalRankState, g.Ranks)
	for i := range r.ranks {
		prog := g.Progs[i]
		rs := &goalRankState{
			rank:       i,
			nodes:      prog,
			pending:    make([]int, len(prog)),
			dependents: make([][]int, len(prog)),
			done:       make([]bool, len(prog)),
			posted:     make(map[goalKey][]int),
			inbox:      make(map[goalKey]int),
			remaining:  len(prog),
		}
		for id, nd := range prog {
			rs.pending[id] = len(nd.Requires)
			for _, dep := range nd.Requires {
				rs.dependents[dep] = append(rs.dependents[dep], id)
			}
		}
		r.ranks[i] = rs
		r.nodeRank[r.node(i)] = i
	}
	for i := 0; i < g.Ranks; i++ {
		net.NICs[r.node(i)].OnMessage = r.makeOnMessage(i)
	}
	return r, nil
}

// node maps a rank to its terminal.
func (r *GoalReplay) node(rank int) topology.NodeID {
	if r.Mapping != nil {
		return r.Mapping[rank]
	}
	return topology.NodeID(rank)
}

// Start begins replay at time at: every node with no dependencies fires.
func (r *GoalReplay) Start(at sim.Time) {
	if r.started {
		panic("goal: replay started twice")
	}
	r.started = true
	r.startAt = at
	for _, rs := range r.ranks {
		rs := rs
		r.Net.Eng.Schedule(at, func(e *sim.Engine) {
			if len(rs.nodes) == 0 {
				r.finishRank(e, rs)
				return
			}
			for id := range rs.nodes {
				if rs.pending[id] == 0 {
					r.fire(e, rs, id)
				}
			}
		})
	}
}

// Finished reports whether every rank completed its graph.
func (r *GoalReplay) Finished() bool { return r.finishedCount == len(r.ranks) }

// ExecutionTime returns the wall time from Start to the last rank's finish.
func (r *GoalReplay) ExecutionTime() sim.Time {
	var end sim.Time
	for _, rs := range r.ranks {
		if rs.finishedAt > end {
			end = rs.finishedAt
		}
	}
	return end - r.startAt
}

// Err reports stuck ranks after the engine has drained — an unmatched
// receive or a dependency that can never be met shows up here.
func (r *GoalReplay) Err() error {
	if r.Finished() {
		return nil
	}
	for _, rs := range r.ranks {
		if rs.finished {
			continue
		}
		for id, nd := range rs.nodes {
			if rs.done[id] {
				continue
			}
			why := "in flight"
			if rs.pending[id] > 0 {
				why = fmt.Sprintf("%d unmet deps", rs.pending[id])
			} else if nd.Op == GoalRecv {
				why = fmt.Sprintf("unmatched recv from %d tag %d", nd.Peer, nd.Tag)
			}
			return fmt.Errorf("goal: rank %d stuck: node %d (%s) %s; %d of %d nodes incomplete",
				rs.rank, id, nd.Op, why, rs.remaining, len(rs.nodes))
		}
	}
	return nil
}

// fire executes a node whose dependencies are all met.
func (r *GoalReplay) fire(e *sim.Engine, rs *goalRankState, id int) {
	nd := &rs.nodes[id]
	switch nd.Op {
	case GoalCalc:
		e.After(nd.Dur, func(e *sim.Engine) { r.complete(e, rs, id) })

	case GoalSend:
		msgID := r.Net.NICs[r.node(rs.rank)].Send(e, r.node(nd.Peer), nd.Bytes, nd.MPIType, uint32(nd.Tag))
		r.sendOwner[msgID] = goalSendRef{rank: rs.rank, id: id}

	case GoalRecv:
		key := goalKey{src: nd.Peer, tag: nd.Tag}
		if rs.inbox[key] > 0 {
			rs.inbox[key]--
			r.complete(e, rs, id)
			return
		}
		rs.posted[key] = append(rs.posted[key], id)
	}
}

// complete marks a node done and fires any dependents it releases.
// Dependents are scheduled as fresh engine events: complete runs inside
// delivery callbacks, and a long chain of zero-cost releases would
// otherwise recurse.
func (r *GoalReplay) complete(e *sim.Engine, rs *goalRankState, id int) {
	if rs.done[id] {
		panic(fmt.Sprintf("goal: rank %d node %d completed twice", rs.rank, id))
	}
	rs.done[id] = true
	rs.remaining--
	for _, d := range rs.dependents[id] {
		rs.pending[d]--
		if rs.pending[d] == 0 {
			d := d
			e.After(0, func(e *sim.Engine) { r.fire(e, rs, d) })
		}
	}
	if rs.remaining == 0 {
		r.finishRank(e, rs)
	}
}

func (r *GoalReplay) finishRank(e *sim.Engine, rs *goalRankState) {
	if rs.finished {
		return
	}
	rs.finished = true
	rs.finishedAt = e.Now()
	r.finishedCount++
}

// makeOnMessage builds the delivery hook for one receiving rank: it
// completes the sender's node (rendezvous completion) and matches the
// receiver's posted receives by (source rank, tag).
func (r *GoalReplay) makeOnMessage(dstRank int) network.MessageHandler {
	return func(e *sim.Engine, srcNode topology.NodeID, msgID uint64, bytes int, mpiType uint8, seq uint32) {
		if ref, ok := r.sendOwner[msgID]; ok {
			delete(r.sendOwner, msgID)
			r.complete(e, r.ranks[ref.rank], ref.id)
		}
		srcRank, ok := r.nodeRank[srcNode]
		if !ok {
			return
		}
		rs := r.ranks[dstRank]
		key := goalKey{src: srcRank, tag: int(seq)}
		if q := rs.posted[key]; len(q) > 0 {
			id := q[0]
			if len(q) == 1 {
				delete(rs.posted, key)
			} else {
				rs.posted[key] = q[1:]
			}
			r.complete(e, rs, id)
			return
		}
		rs.inbox[key]++
	}
}
