package trace

import (
	"fmt"

	"prdrb/internal/network"
	"prdrb/internal/sim"
	"prdrb/internal/topology"
)

// blockKind says why a rank's state machine is not advancing.
type blockKind uint8

const (
	notBlocked blockKind = iota
	blockedCompute
	blockedWaitOne  // OpWait: oldest unretired request
	blockedWaitAll  // OpWaitall: every unretired request
	blockedWaitSend // OpSend's implicit request (retired out of order)
)

// request is an outstanding nonblocking operation.
type request struct {
	isRecv bool
	src    int // source rank for receives
	done   bool
}

// rankState is one rank's replay FSM (the processing-node model of §4.1.1:
// "read an input trace file and simulate the events").
type rankState struct {
	rank   int
	pc     int
	events []Event

	// inbox counts arrived-but-unmatched messages per source rank (eager
	// buffering).
	inbox map[int]int
	// reqs holds unretired requests in posting order.
	reqs []*request

	blocked  blockKind
	sendWait *request // the blocking-send request (blockedWaitSend)

	finished   bool
	finishedAt sim.Time
	mpiSeq     uint32
}

// Replay drives the network from a trace: blocking sends complete when the
// message is fully delivered (rendezvous semantics), so application
// execution time directly reflects network latency — the coupling behind
// the paper's execution-time results (Figs 4.21b, 4.25b, 4.27b).
type Replay struct {
	Net   *network.Network
	Trace *Trace
	// Mapping maps rank -> terminal node; nil means identity placement.
	Mapping []topology.NodeID

	ranks     []*rankState
	nodeRank  map[topology.NodeID]int
	sendOwner map[uint64]*sendRef

	startAt       sim.Time
	finishedCount int
	started       bool
}

type sendRef struct {
	rank int
	req  *request
}

// NewReplay prepares a replay of tr over net. The trace's rank count must
// not exceed the network's terminals.
func NewReplay(net *network.Network, tr *Trace, mapping []topology.NodeID) (*Replay, error) {
	if tr.Ranks > net.Topo.NumTerminals() {
		return nil, fmt.Errorf("trace: %d ranks exceed %d terminals", tr.Ranks, net.Topo.NumTerminals())
	}
	if mapping != nil && len(mapping) != tr.Ranks {
		return nil, fmt.Errorf("trace: mapping has %d entries for %d ranks", len(mapping), tr.Ranks)
	}
	r := &Replay{
		Net:       net,
		Trace:     tr,
		Mapping:   mapping,
		nodeRank:  make(map[topology.NodeID]int, tr.Ranks),
		sendOwner: make(map[uint64]*sendRef),
	}
	r.ranks = make([]*rankState, tr.Ranks)
	for i := range r.ranks {
		r.ranks[i] = &rankState{
			rank:   i,
			events: tr.Events[i],
			inbox:  make(map[int]int),
		}
		r.nodeRank[r.node(i)] = i
	}
	// Hook message delivery on the participating NICs.
	for i := 0; i < tr.Ranks; i++ {
		net.NICs[r.node(i)].OnMessage = r.makeOnMessage(i)
	}
	return r, nil
}

// node maps a rank to its terminal.
func (r *Replay) node(rank int) topology.NodeID {
	if r.Mapping != nil {
		return r.Mapping[rank]
	}
	return topology.NodeID(rank)
}

// Start begins replay at time at (schedules every rank's first step).
func (r *Replay) Start(at sim.Time) {
	if r.started {
		panic("trace: replay started twice")
	}
	r.started = true
	r.startAt = at
	for _, rs := range r.ranks {
		rs := rs
		r.Net.Eng.Schedule(at, func(e *sim.Engine) { r.step(e, rs) })
	}
}

// Finished reports whether every rank completed its trace.
func (r *Replay) Finished() bool { return r.finishedCount == len(r.ranks) }

// ExecutionTime returns the wall time from Start to the last rank's finish.
func (r *Replay) ExecutionTime() sim.Time {
	var end sim.Time
	for _, rs := range r.ranks {
		if rs.finishedAt > end {
			end = rs.finishedAt
		}
	}
	return end - r.startAt
}

// Err reports stuck ranks after the engine has drained — a mismatched
// trace (send without receive or vice versa) shows up here.
func (r *Replay) Err() error {
	if r.Finished() {
		return nil
	}
	for _, rs := range r.ranks {
		if !rs.finished {
			ev := "end"
			if rs.pc < len(rs.events) {
				ev = rs.events[rs.pc].Op.String()
			}
			return fmt.Errorf("trace: rank %d stuck at pc=%d (%s), blocked=%d, %d reqs",
				rs.rank, rs.pc, ev, rs.blocked, len(rs.reqs))
		}
	}
	return nil
}

// step advances a rank until it blocks or finishes.
func (r *Replay) step(e *sim.Engine, rs *rankState) {
	rs.blocked = notBlocked
	for rs.pc < len(rs.events) {
		ev := &rs.events[rs.pc]
		switch ev.Op {
		case OpCompute:
			rs.pc++
			rs.blocked = blockedCompute
			r.after(e, ev.Dur, rs)
			return

		case OpIsend:
			rs.pc++
			r.inject(e, rs, ev)

		case OpSend:
			rs.pc++
			req := r.inject(e, rs, ev)
			if req != nil && !req.done {
				rs.blocked = blockedWaitSend
				rs.sendWait = req
				return
			}
			if req != nil {
				rs.retire(req)
			}

		case OpIrecv:
			rs.pc++
			req := &request{isRecv: true, src: ev.Peer}
			if rs.inbox[ev.Peer] > 0 {
				rs.inbox[ev.Peer]--
				req.done = true
			}
			rs.reqs = append(rs.reqs, req)

		case OpRecv:
			// A blocking receive is Irecv + wait-for-that-request; express
			// it through the same queue so message matching stays in
			// posting order.
			req := &request{isRecv: true, src: ev.Peer}
			if rs.inbox[ev.Peer] > 0 {
				rs.inbox[ev.Peer]--
				req.done = true
				rs.pc++
				continue
			}
			rs.reqs = append(rs.reqs, req)
			rs.pc++
			rs.blocked = blockedWaitSend // identical semantics: one request
			rs.sendWait = req
			return

		case OpWait:
			if len(rs.reqs) == 0 {
				rs.pc++
				continue
			}
			if rs.reqs[0].done {
				rs.reqs = rs.reqs[1:]
				rs.pc++
				continue
			}
			rs.pc++
			rs.blocked = blockedWaitOne
			return

		case OpWaitall:
			if rs.allDone() {
				rs.reqs = rs.reqs[:0]
				rs.pc++
				continue
			}
			rs.pc++
			rs.blocked = blockedWaitAll
			return

		default:
			panic(fmt.Sprintf("trace: rank %d: unloweable op %v at pc %d", rs.rank, ev.Op, rs.pc))
		}
	}
	if !rs.finished {
		rs.finished = true
		rs.finishedAt = e.Now()
		r.finishedCount++
	}
}

func (rs *rankState) allDone() bool {
	for _, q := range rs.reqs {
		if !q.done {
			return false
		}
	}
	return true
}

// retire removes a specific request (blocking sends complete out of order).
func (rs *rankState) retire(req *request) {
	for i, q := range rs.reqs {
		if q == req {
			rs.reqs = append(rs.reqs[:i], rs.reqs[i+1:]...)
			return
		}
	}
}

// inject sends the event's message and registers the send request.
func (r *Replay) inject(e *sim.Engine, rs *rankState, ev *Event) *request {
	if ev.Peer == rs.rank {
		panic(fmt.Sprintf("trace: rank %d sends to itself", rs.rank))
	}
	req := &request{}
	rs.reqs = append(rs.reqs, req)
	rs.mpiSeq++
	msgID := r.Net.NICs[r.node(rs.rank)].Send(e, r.node(ev.Peer), ev.Bytes, ev.MPIType, rs.mpiSeq)
	r.sendOwner[msgID] = &sendRef{rank: rs.rank, req: req}
	return req
}

func (r *Replay) after(e *sim.Engine, d sim.Time, rs *rankState) {
	e.After(d, func(e *sim.Engine) { r.step(e, rs) })
}

// makeOnMessage builds the delivery hook for one receiving rank: it
// completes the sender's request (the message is fully delivered — the
// rendezvous completion) and matches the receiver's posted receives.
func (r *Replay) makeOnMessage(dstRank int) network.MessageHandler {
	return func(e *sim.Engine, srcNode topology.NodeID, msgID uint64, bytes int, mpiType uint8, seq uint32) {
		if ref, ok := r.sendOwner[msgID]; ok {
			delete(r.sendOwner, msgID)
			ref.req.done = true
			r.poke(e, r.ranks[ref.rank])
		}
		srcRank, ok := r.nodeRank[srcNode]
		if !ok {
			return
		}
		rs := r.ranks[dstRank]
		// Match the oldest incomplete posted receive from srcRank.
		for _, q := range rs.reqs {
			if q.isRecv && !q.done && q.src == srcRank {
				q.done = true
				r.poke(e, rs)
				return
			}
		}
		rs.inbox[srcRank]++
	}
}

// poke re-checks a blocked rank's condition and resumes it when satisfied.
func (r *Replay) poke(e *sim.Engine, rs *rankState) {
	switch rs.blocked {
	case blockedWaitSend:
		if rs.sendWait != nil && rs.sendWait.done {
			rs.retire(rs.sendWait)
			rs.sendWait = nil
			r.resume(e, rs)
		}
	case blockedWaitOne:
		if len(rs.reqs) > 0 && rs.reqs[0].done {
			rs.reqs = rs.reqs[1:]
			r.resume(e, rs)
		}
	case blockedWaitAll:
		if rs.allDone() {
			rs.reqs = rs.reqs[:0]
			r.resume(e, rs)
		}
	}
}

func (r *Replay) resume(e *sim.Engine, rs *rankState) {
	rs.blocked = notBlocked
	// Resume via a fresh event: poke runs inside a delivery callback and a
	// long chain of resumes would otherwise recurse.
	e.After(0, func(e *sim.Engine) { r.step(e, rs) })
}
