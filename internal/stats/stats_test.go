package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(10, 42)
	b := Seeds(10, 42)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("duplicate seed")
		}
		seen[a[i]] = true
	}
	c := Seeds(10, 43)
	if a[0] == c[0] {
		t.Fatal("different bases gave same first seed")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30})
	if s.Mean != 20 || s.N != 3 || s.CI95 <= 0 {
		t.Fatalf("Summarize = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary wrong")
	}
	one := Summarize([]float64{5})
	if one.Mean != 5 || one.CI95 != 0 {
		t.Fatal("single-sample summary wrong")
	}
	if one.String() == "" {
		t.Fatal("empty render")
	}
}

func TestMultiSeed(t *testing.T) {
	s := MultiSeed(Seeds(5, 1), func(seed uint64) float64 {
		return float64(seed % 100)
	})
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestGainPct(t *testing.T) {
	if GainPct(100, 80) != 20 {
		t.Fatal("20% gain wrong")
	}
	if GainPct(100, 120) != -20 {
		t.Fatal("negative gain wrong")
	}
	if GainPct(0, 5) != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

// Property: the summary mean is bounded by min/max of the inputs.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		lo, hi := clean[0], clean[0]
		for _, v := range clean {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return s.Mean >= lo-1e-9 && s.Mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
