package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeedsDeterministicAndDistinct(t *testing.T) {
	a := Seeds(10, 42)
	b := Seeds(10, 42)
	seen := map[uint64]bool{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
		if seen[a[i]] {
			t.Fatal("duplicate seed")
		}
		seen[a[i]] = true
	}
	c := Seeds(10, 43)
	if a[0] == c[0] {
		t.Fatal("different bases gave same first seed")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{10, 20, 30})
	if s.Mean != 20 || s.N != 3 || s.CI95 <= 0 {
		t.Fatalf("Summarize = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary wrong")
	}
	one := Summarize([]float64{5})
	if one.Mean != 5 || one.CI95 != 0 {
		t.Fatal("single-sample summary wrong")
	}
	if one.String() == "" {
		t.Fatal("empty render")
	}
}

func TestTCrit95(t *testing.T) {
	cases := []struct {
		dof  int
		want float64
	}{
		{0, 0}, {1, 12.706}, {2, 4.303}, {4, 2.776}, {9, 2.262},
		{10, 2.228}, {11, 1.96}, {1000, 1.96},
	}
	for _, c := range cases {
		if got := TCrit95(c.dof); got != c.want {
			t.Fatalf("TCrit95(%d) = %v, want %v", c.dof, got, c.want)
		}
	}
	// Critical values must shrink monotonically toward the normal limit.
	for dof := 2; dof <= 11; dof++ {
		if TCrit95(dof) >= TCrit95(dof-1) {
			t.Fatalf("TCrit95 not decreasing at dof=%d", dof)
		}
	}
}

// The Student-t interval widens small samples relative to the old normal
// approximation: at n=2 the half-interval is t_1/1.96 ≈ 6.5x wider.
func TestSummarizeUsesStudentT(t *testing.T) {
	s := Summarize([]float64{10, 20})
	sd := math.Sqrt(50.0) // sample stddev of {10,20}
	want := 12.706 * sd / math.Sqrt(2)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Fatalf("CI95 = %v, want %v", s.CI95, want)
	}
}

func TestMultiSeed(t *testing.T) {
	s := MultiSeed(Seeds(5, 1), func(seed uint64) float64 {
		return float64(seed % 100)
	})
	if s.N != 5 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestGainPct(t *testing.T) {
	if GainPct(100, 80) != 20 {
		t.Fatal("20% gain wrong")
	}
	if GainPct(100, 120) != -20 {
		t.Fatal("negative gain wrong")
	}
	if GainPct(0, 5) != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

// Property: the summary mean is bounded by min/max of the inputs.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(vals []float64) bool {
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		lo, hi := clean[0], clean[0]
		for _, v := range clean {
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
		return s.Mean >= lo-1e-9 && s.Mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
