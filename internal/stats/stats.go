// Package stats implements the statistical method of thesis §4.3: every
// experiment runs under several RNG seeds and reports the averaged result
// with a confidence interval, avoiding single-run anomalies.
package stats

import (
	"fmt"
	"math"
)

// Seeds derives n deterministic seeds from a base (SplitMix64 step), so an
// experiment's seed list is reproducible from one number.
func Seeds(n int, base uint64) []uint64 {
	out := make([]uint64, n)
	x := base
	for i := range out {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		out[i] = z ^ (z >> 31)
	}
	return out
}

// Summary is a multi-seed measurement: mean and 95% confidence
// half-interval (Student-t on n-1 degrees of freedom).
type Summary struct {
	Mean   float64
	CI95   float64
	N      int
	Values []float64
}

// tCrit95 holds two-sided 95% Student-t critical values for 1..10
// degrees of freedom. Experiment sweeps run 3-10 seeds, where the normal
// 1.96 understates the interval badly (at n=3 the true factor is 4.3).
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
}

// TCrit95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom, falling back to the normal 1.96 asymptote
// beyond the table.
func TCrit95(dof int) float64 {
	if dof <= 0 {
		return 0
	}
	if dof <= len(tCrit95) {
		return tCrit95[dof-1]
	}
	return 1.96
}

// Summarize folds raw per-seed values into a Summary.
func Summarize(values []float64) Summary {
	s := Summary{N: len(values), Values: values}
	if s.N == 0 {
		return s
	}
	for _, v := range values {
		s.Mean += v
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range values {
			d := v - s.Mean
			ss += d * d
		}
		s.CI95 = TCrit95(s.N-1) * math.Sqrt(ss/float64(s.N-1)) / math.Sqrt(float64(s.N))
	}
	return s
}

// MultiSeed runs fn once per seed and summarizes the results.
func MultiSeed(seeds []uint64, fn func(seed uint64) float64) Summary {
	values := make([]float64, len(seeds))
	for i, s := range seeds {
		values[i] = fn(s)
	}
	return Summarize(values)
}

// String renders "mean ± ci".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.CI95, s.N)
}

// GainPct returns the relative reduction of measured vs baseline in
// percent: 100 * (baseline - measured) / baseline. Positive = improvement.
// This is how the paper states every latency/execution-time gain.
func GainPct(baseline, measured float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - measured) / baseline
}
