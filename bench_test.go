package prdrb

// One benchmark per table and figure of the paper's evaluation (see
// DESIGN.md §5 for the mapping). Each bench executes a scaled-down version
// of the corresponding experiment per iteration and reports the domain
// metrics (latencies in us, gains in percent) via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates the whole result set. The
// full-scale renditions live in cmd/experiments.

import (
	"fmt"
	"testing"

	"prdrb/internal/phase"
	"prdrb/internal/sim"
)

// benchBursts runs the repeated-burst permutation scenario.
func benchBursts(policy Policy, pattern string, nodes int, rate float64, count int, seed uint64) (Results, []float64) {
	s := MustNewSim(Experiment{
		Topology:     FatTree(4, 3),
		Policy:       policy,
		Seed:         seed,
		SeriesWindow: 50 * Microsecond,
	})
	blen, gap := 250*Microsecond, 300*Microsecond
	end, err := s.InstallBursts(BurstSpec{
		Pattern: pattern, RateMbps: rate, Len: blen, Gap: gap,
		Count: count, PatternNodes: nodes,
	})
	if err != nil {
		panic(err)
	}
	res := s.Execute(end + Second)
	period := blen + gap
	avg := make([]float64, count)
	n := make([]int64, count)
	for _, smp := range s.Collector.GlobalSeries.Samples() {
		b := int((smp.At - 1) / period)
		if b >= 0 && b < count {
			avg[b] += smp.Avg * float64(smp.N)
			n[b] += smp.N
		}
	}
	for i := range avg {
		if n[i] > 0 {
			avg[i] /= float64(n[i]) * 1e3
		}
	}
	return res, avg
}

// permutationBench reports det/drb/pr-drb global latency and the PR gain
// for one Fig 4.13-4.18 configuration.
func permutationBench(b *testing.B, pattern string, nodes int, rate float64) {
	b.Helper()
	var det, drb, pr float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		d, _ := benchBursts(PolicyDeterministic, pattern, nodes, rate, 6, seed)
		r, _ := benchBursts(PolicyDRB, pattern, nodes, rate, 6, seed)
		p, _ := benchBursts(PolicyPRDRB, pattern, nodes, rate, 6, seed)
		det, drb, pr = d.GlobalLatencyUs, r.GlobalLatencyUs, p.GlobalLatencyUs
	}
	b.ReportMetric(det, "det_us")
	b.ReportMetric(drb, "drb_us")
	b.ReportMetric(pr, "prdrb_us")
	b.ReportMetric(GainPct(drb, pr), "pr_vs_drb_%")
}

func BenchmarkFig4_13_14_Shuffle32(b *testing.B)   { permutationBench(b, "shuffle", 32, 900) }
func BenchmarkFig4_15_16_BitRev32(b *testing.B)    { permutationBench(b, "bitreversal", 32, 900) }
func BenchmarkFig4_17_18_Transpose64(b *testing.B) { permutationBench(b, "transpose", 64, 900) }
func BenchmarkFigA_1_4_Permutations(b *testing.B) {
	permutationBench(b, "transpose", 32, 600)
}

// BenchmarkFig3_1_BurstTransient reports the Fig 3.1 signature: first-burst
// parity and late-burst divergence between DRB and PR-DRB.
func BenchmarkFig3_1_BurstTransient(b *testing.B) {
	var first, late float64
	for i := 0; i < b.N; i++ {
		_, drbB := benchBursts(PolicyDRB, "shuffle", 64, 900, 6, uint64(i+1))
		_, prB := benchBursts(PolicyPRDRB, "shuffle", 64, 900, 6, uint64(i+1))
		first = GainPct(drbB[0], prB[0])
		late = GainPct(drbB[5], prB[5])
	}
	b.ReportMetric(first, "first_burst_gain_%")
	b.ReportMetric(late, "late_burst_gain_%")
}

// BenchmarkFig4_8_PathOpening measures the DRB path-expansion machinery
// under a mesh hot-spot.
func BenchmarkFig4_8_PathOpening(b *testing.B) {
	var opened, closed int64
	for i := 0; i < b.N; i++ {
		s := MustNewSim(Experiment{Topology: Mesh(8, 8), Policy: PolicyDRB, Seed: uint64(i + 1)})
		flows := map[NodeID]NodeID{}
		for j := 0; j < 6; j++ {
			flows[NodeID(j)] = NodeID(63 - j)
		}
		s.InstallHotSpot(flows, 1200, 0, 500*Microsecond)
		res := s.Execute(Second)
		opened, closed = res.Stats.PathsOpened, res.Stats.PathsClosed
	}
	b.ReportMetric(float64(opened), "paths_opened")
	b.ReportMetric(float64(closed), "paths_closed")
}

func benchMeshHotspot(policy Policy, seed uint64) (*Sim, Results) {
	s := MustNewSim(Experiment{Topology: Mesh(8, 8), Policy: policy, Seed: seed})
	flows := map[NodeID]NodeID{}
	for i := 0; i < 8; i++ {
		flows[NodeID(i)] = NodeID(63 - i)
		flows[NodeID(8*i)] = NodeID(8*i + 7)
	}
	for bu := 0; bu < 4; bu++ {
		start := Time(bu) * 550 * Microsecond
		s.InstallHotSpot(flows, 800, start, start+250*Microsecond)
	}
	if err := s.InstallPattern(PatternSpec{Pattern: "uniform", RateMbps: 100, Start: 0, End: 2200 * Microsecond}); err != nil {
		panic(err)
	}
	res := s.Execute(Second)
	return s, res
}

// BenchmarkFig4_10_11_LatencyMapMesh reports the mesh hot-spot map peaks
// for DRB and PR-DRB.
func BenchmarkFig4_10_11_LatencyMapMesh(b *testing.B) {
	var drbPeak, prPeak float64
	for i := 0; i < b.N; i++ {
		sd, _ := benchMeshHotspot(PolicyDRB, uint64(i+1))
		sp, _ := benchMeshHotspot(PolicyPRDRB, uint64(i+1))
		drbPeak = sd.Map().Peak().AvgNs / 1e3
		prPeak = sp.Map().Peak().AvgNs / 1e3
	}
	b.ReportMetric(drbPeak, "drb_peak_us")
	b.ReportMetric(prPeak, "prdrb_peak_us")
}

// BenchmarkFig4_12_MeshAvgLatency reports global mesh latency DRB vs
// PR-DRB under repetitive hot-spot bursts.
func BenchmarkFig4_12_MeshAvgLatency(b *testing.B) {
	var drb, pr float64
	for i := 0; i < b.N; i++ {
		_, rd := benchMeshHotspot(PolicyDRB, uint64(i+1))
		_, rp := benchMeshHotspot(PolicyPRDRB, uint64(i+1))
		drb, pr = rd.GlobalLatencyUs, rp.GlobalLatencyUs
	}
	b.ReportMetric(drb, "drb_us")
	b.ReportMetric(pr, "prdrb_us")
	b.ReportMetric(GainPct(drb, pr), "gain_%")
}

// benchApp replays a workload trace under a policy.
func benchApp(app string, policy Policy, seed uint64, iters int) (Results, Time) {
	tr, err := Workload(app, WorkloadOptions{Iterations: iters})
	if err != nil {
		panic(err)
	}
	exp := Experiment{Topology: FatTree(4, 3), Policy: policy, Seed: seed}
	if cfg, ok := TracePolicyConfig(policy); ok {
		exp.DRB = &cfg
	}
	s := MustNewSim(exp)
	rep, err := s.PlayTrace(tr, nil)
	if err != nil {
		panic(err)
	}
	res := s.Execute(60 * Second)
	if err := rep.Err(); err != nil {
		panic(err)
	}
	return res, rep.ExecutionTime()
}

// appBench reports deterministic vs PR-DRB latency and execution time.
func appBench(b *testing.B, app string, iters int) {
	b.Helper()
	var detLat, prLat, detExec, prExec float64
	for i := 0; i < b.N; i++ {
		rd, ed := benchApp(app, PolicyDeterministic, uint64(i+1), iters)
		rp, ep := benchApp(app, PolicyPRDRB, uint64(i+1), iters)
		detLat, prLat = rd.GlobalLatencyUs, rp.GlobalLatencyUs
		detExec, prExec = ed.Micros(), ep.Micros()
	}
	b.ReportMetric(detLat, "det_us")
	b.ReportMetric(prLat, "prdrb_us")
	b.ReportMetric(GainPct(detLat, prLat), "lat_gain_%")
	b.ReportMetric(GainPct(detExec, prExec), "exec_gain_%")
}

func BenchmarkFig4_20_NASLUMap(b *testing.B) {
	var detPeak, prPeak float64
	for i := 0; i < b.N; i++ {
		mk := func(p Policy) float64 {
			tr, _ := Workload("nas-lu", WorkloadOptions{Iterations: 4, MsgBytes: 16 * 1024, ComputeNs: 10 * Microsecond})
			exp := Experiment{Topology: FatTree(4, 3), Policy: p, Seed: uint64(i + 1)}
			if cfg, ok := TracePolicyConfig(p); ok {
				exp.DRB = &cfg
			}
			s := MustNewSim(exp)
			rep, _ := s.PlayTrace(tr, nil)
			s.Execute(60 * Second)
			if err := rep.Err(); err != nil {
				panic(err)
			}
			return s.Map().Peak().AvgNs / 1e3
		}
		detPeak = mk(PolicyDeterministic)
		prPeak = mk(PolicyPRDRB)
	}
	b.ReportMetric(detPeak, "det_peak_us")
	b.ReportMetric(prPeak, "prdrb_peak_us")
	b.ReportMetric(GainPct(detPeak, prPeak), "peak_gain_%")
}

func BenchmarkFig4_21_NASMG(b *testing.B)        { appBench(b, "nas-mg-a", 5) }
func BenchmarkFig4_22_23_MGRouters(b *testing.B) { appBench(b, "nas-mg-b", 4) }
func BenchmarkFig4_24_LammpsMap(b *testing.B)    { appBench(b, "lammps-chain", 6) }

func BenchmarkFig4_25_LammpsGlobal(b *testing.B) {
	var drbLat, prLat float64
	for i := 0; i < b.N; i++ {
		rd, _ := benchApp("lammps-chain", PolicyDRB, uint64(i+1), 6)
		rp, _ := benchApp("lammps-chain", PolicyPRDRB, uint64(i+1), 6)
		drbLat, prLat = rd.GlobalLatencyUs, rp.GlobalLatencyUs
	}
	b.ReportMetric(drbLat, "drb_us")
	b.ReportMetric(prLat, "prdrb_us")
}

func BenchmarkFig4_26_LammpsRouters(b *testing.B) {
	var saved, reused, applications float64
	for i := 0; i < b.N; i++ {
		res, _ := benchApp("lammps-chain", PolicyPRDRB, uint64(i+1), 8)
		saved = float64(res.SavedPatterns)
		reused = float64(res.Stats.PatternsReused)
		applications = float64(res.Stats.ReuseApplications)
	}
	b.ReportMetric(saved, "patterns_saved")
	b.ReportMetric(reused, "patterns_reused")
	b.ReportMetric(applications, "applications")
}

func BenchmarkFig4_27_POPGlobal(b *testing.B) {
	var det, rnd, pr float64
	for i := 0; i < b.N; i++ {
		rd, _ := benchApp("pop", PolicyDeterministic, uint64(i+1), 8)
		rr, _ := benchApp("pop", PolicyRandom, uint64(i+1), 8)
		rp, _ := benchApp("pop", PolicyPRDRB, uint64(i+1), 8)
		det, rnd, pr = rd.GlobalLatencyUs, rr.GlobalLatencyUs, rp.GlobalLatencyUs
	}
	b.ReportMetric(det, "det_us")
	b.ReportMetric(rnd, "random_us")
	b.ReportMetric(pr, "prdrb_us")
	b.ReportMetric(GainPct(det, pr), "pr_vs_det_%")
}

func BenchmarkFig4_28_POPRouters(b *testing.B) { appBench(b, "pop", 8) }

func BenchmarkFig4_29_30_POPMaps(b *testing.B) {
	var detPeak, prPeak float64
	for i := 0; i < b.N; i++ {
		mk := func(p Policy) float64 {
			tr, _ := Workload("pop", WorkloadOptions{Iterations: 8})
			exp := Experiment{Topology: FatTree(4, 3), Policy: p, Seed: uint64(i + 1)}
			if cfg, ok := TracePolicyConfig(p); ok {
				exp.DRB = &cfg
			}
			s := MustNewSim(exp)
			rep, _ := s.PlayTrace(tr, nil)
			s.Execute(60 * Second)
			if err := rep.Err(); err != nil {
				panic(err)
			}
			return s.Map().Peak().AvgNs / 1e3
		}
		detPeak = mk(PolicyDeterministic)
		prPeak = mk(PolicyPRDRB)
	}
	b.ReportMetric(detPeak, "det_peak_us")
	b.ReportMetric(prPeak, "prdrb_peak_us")
}

// BenchmarkTable2_1_MPICallMix regenerates the call-mix shares.
func BenchmarkTable2_1_MPICallMix(b *testing.B) {
	var popIsend, popAllreduce, luSend float64
	for i := 0; i < b.N; i++ {
		pop, err := Workload("pop", WorkloadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		lu, err := Workload("nas-lu", WorkloadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		popIsend = 100 * pop.CallShare(MPIIsend)
		popAllreduce = 100 * pop.CallShare(MPIAllreduce)
		luSend = 100 * lu.CallShare(MPISend)
	}
	b.ReportMetric(popIsend, "pop_isend_%")
	b.ReportMetric(popAllreduce, "pop_allreduce_%")
	b.ReportMetric(luSend, "lu_send_%")
}

// BenchmarkTable2_2_Phases regenerates the phase-repetition statistics.
func BenchmarkTable2_2_Phases(b *testing.B) {
	var total, weight float64
	for i := 0; i < b.N; i++ {
		tr, err := Workload("pop", WorkloadOptions{Iterations: 15})
		if err != nil {
			b.Fatal(err)
		}
		an := phase.Analyze(tr, 10*sim.Microsecond)
		total = float64(an.TotalPhases())
		weight = float64(an.RepetitionWeight(2))
	}
	b.ReportMetric(total, "total_phases")
	b.ReportMetric(weight, "repetition_weight")
}

// BenchmarkFig2_10_CommMatrices regenerates TDC values.
func BenchmarkFig2_10_CommMatrices(b *testing.B) {
	var chainTDC, sweepTDC float64
	for i := 0; i < b.N; i++ {
		chain, err := Workload("lammps-chain", WorkloadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		sw, err := Workload("sweep3d", WorkloadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		chainTDC, _ = phase.TDC(phase.CommMatrix(chain))
		sweepTDC, _ = phase.TDC(phase.CommMatrix(sw))
	}
	b.ReportMetric(chainTDC, "lammps_tdc")
	b.ReportMetric(sweepTDC, "sweep3d_tdc")
}

// BenchmarkAblKnowledgePreload measures the §5.2 static variation: a
// trained solution database preloaded into a fresh run.
func BenchmarkAblKnowledgePreload(b *testing.B) {
	var coldLat, warmLat float64
	for i := 0; i < b.N; i++ {
		seed := uint64(i + 1)
		train := MustNewSim(Experiment{Topology: FatTree(4, 3), Policy: PolicyPRDRB, Seed: seed})
		end, _ := train.InstallBursts(BurstSpec{Pattern: "shuffle", RateMbps: 900,
			Len: 250 * Microsecond, Gap: 300 * Microsecond, Count: 5})
		train.Execute(end + Second)
		know := train.ExportKnowledge()

		run := func(preload bool) float64 {
			s := MustNewSim(Experiment{Topology: FatTree(4, 3), Policy: PolicyPRDRB, Seed: seed + 100})
			if preload {
				if err := s.ImportKnowledge(know); err != nil {
					b.Fatal(err)
				}
			}
			end, _ := s.InstallBursts(BurstSpec{Pattern: "shuffle", RateMbps: 900,
				Len: 250 * Microsecond, Gap: 300 * Microsecond, Count: 3})
			return s.Execute(end + Second).GlobalLatencyUs
		}
		coldLat, warmLat = run(false), run(true)
	}
	b.ReportMetric(coldLat, "cold_us")
	b.ReportMetric(warmLat, "preloaded_us")
	b.ReportMetric(GainPct(coldLat, warmLat), "gain_%")
}

// BenchmarkAblTrendPrediction measures the §5.2 trend predictor.
func BenchmarkAblTrendPrediction(b *testing.B) {
	var off, on float64
	for i := 0; i < b.N; i++ {
		run := func(horizon Time) float64 {
			cfg := PRDRBPolicyConfig()
			cfg.TrendHorizon = horizon
			s := MustNewSim(Experiment{Topology: FatTree(4, 3), Policy: PolicyPRDRB, Seed: uint64(i + 1), DRB: &cfg})
			end, _ := s.InstallBursts(BurstSpec{Pattern: "shuffle", RateMbps: 900,
				Len: 250 * Microsecond, Gap: 300 * Microsecond, Count: 5})
			return s.Execute(end + Second).GlobalLatencyUs
		}
		off, on = run(0), run(300*Microsecond)
	}
	b.ReportMetric(off, "reactive_us")
	b.ReportMetric(on, "predictive_us")
	b.ReportMetric(GainPct(off, on), "gain_%")
}

// BenchmarkAblPlacement measures mapping optimization composed with PR-DRB.
func BenchmarkAblPlacement(b *testing.B) {
	var idLat, optLat float64
	for i := 0; i < b.N; i++ {
		tr, err := Workload("lammps-chain", WorkloadOptions{Iterations: 6})
		if err != nil {
			b.Fatal(err)
		}
		mapping, _, err := OptimizePlacement(FatTree(4, 3), tr, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		run := func(m []NodeID) float64 {
			exp := Experiment{Topology: FatTree(4, 3), Policy: PolicyPRDRB, Seed: uint64(i + 1)}
			if cfg, ok := TracePolicyConfig(exp.Policy); ok {
				exp.DRB = &cfg
			}
			s := MustNewSim(exp)
			rep, err := s.PlayTrace(tr, m)
			if err != nil {
				b.Fatal(err)
			}
			res := s.Execute(60 * Second)
			if err := rep.Err(); err != nil {
				b.Fatal(err)
			}
			return res.GlobalLatencyUs
		}
		idLat, optLat = run(nil), run(mapping)
	}
	b.ReportMetric(idLat, "identity_us")
	b.ReportMetric(optLat, "optimized_us")
	b.ReportMetric(GainPct(idLat, optLat), "gain_%")
}

// BenchmarkEngineThroughput measures raw simulator performance: events per
// second on a saturated fat-tree (an engineering metric, not a paper
// figure).
func BenchmarkEngineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := MustNewSim(Experiment{Topology: FatTree(4, 3), Policy: PolicyAdaptive, Seed: uint64(i + 1)})
		if err := s.InstallPattern(PatternSpec{Pattern: "uniform", RateMbps: 800, Start: 0, End: 500 * Microsecond}); err != nil {
			b.Fatal(err)
		}
		s.Execute(Second)
		b.ReportMetric(float64(s.Eng.Processed), "events")
	}
}

var _ = fmt.Sprintf // reserved for debug formatting in benches
